#ifndef PIET_ANALYSIS_DIAGNOSTIC_H_
#define PIET_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace piet::analysis {

/// Severity of a diagnostic. Errors are well-formedness violations that make
/// aggregates untrustworthy (the summability preconditions of Defs. 1-3 and
/// Sec. 4/5); warnings are suspicious but evaluable; notes are informational.
enum class Severity {
  kNote = 0,
  kWarning,
  kError,
};

std::string_view SeverityToString(Severity severity);

/// How checkers are wired into evaluation and load paths:
///  * kOff    — no checks run; behavior is byte-identical to the unchecked
///              code paths.
///  * kWarn   — checks run; error diagnostics are downgraded to warnings and
///              surfaced alongside the result, evaluation proceeds.
///  * kStrict — checks run; any error diagnostic rejects the operation with
///              an InvalidArgument status naming the offending entity.
enum class CheckMode {
  kOff = 0,
  kWarn,
  kStrict,
};

std::string_view CheckModeToString(CheckMode mode);

/// One finding of a checker: a severity, a stable kebab-case check ID (the
/// catalog lives in DESIGN.md), the entity it attributes to (layer, MOFT row,
/// query clause, ...), and a human-readable message.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string check_id;  ///< e.g. "moft-time-monotonic"
  std::string entity;    ///< e.g. "moft 'FMbus' oid 3" or "WHERE clause 2"
  std::string message;
  /// Optional machine-applicable replacement for the offending construct,
  /// e.g. "T BETWEEN 189493200 AND 189496800" — empty when no rewrite is
  /// known. Rendered as a trailing "(fix: ...)" by ToString.
  std::string fixit;

  /// "error [moft-time-monotonic] moft 'FMbus' oid 3: ..." with an optional
  /// " (fix: ...)" suffix when a fix-it is attached.
  std::string ToString() const;

  /// One JSON object {"severity","check_id","entity","message"[,"fixit"]}
  /// with all strings escaped; "fixit" is omitted when empty.
  std::string ToJson() const;
};

/// An append-only collection of diagnostics with the queries checkers and
/// their callers need: error presence, per-ID lookup, and rendering either as
/// text or as a Status for strict-mode gates.
class DiagnosticList {
 public:
  DiagnosticList() = default;

  /// Appends a finding unless an identical (check_id, entity, message)
  /// triple is already present — repeated analyze calls over the same input
  /// (e.g. CheckAll reaching a schema both directly and via its instance)
  /// must not duplicate findings. Distinct messages on a shared entity are
  /// distinct findings and are all kept. An empty `fixit` attaches no
  /// rewrite.
  void Add(Severity severity, std::string check_id, std::string entity,
           std::string message, std::string fixit = std::string());
  void AddError(std::string check_id, std::string entity, std::string message,
                std::string fixit = std::string()) {
    Add(Severity::kError, std::move(check_id), std::move(entity),
        std::move(message), std::move(fixit));
  }
  void AddWarning(std::string check_id, std::string entity,
                  std::string message, std::string fixit = std::string()) {
    Add(Severity::kWarning, std::move(check_id), std::move(entity),
        std::move(message), std::move(fixit));
  }
  void AddNote(std::string check_id, std::string entity, std::string message,
               std::string fixit = std::string()) {
    Add(Severity::kNote, std::move(check_id), std::move(entity),
        std::move(message), std::move(fixit));
  }

  /// Appends every diagnostic of `other`.
  void Merge(const DiagnosticList& other);

  /// Re-labels every error as a warning (the kWarn downgrade).
  void DowngradeErrorsToWarnings();

  bool empty() const { return diagnostics_.empty(); }
  size_t size() const { return diagnostics_.size(); }
  const Diagnostic& operator[](size_t i) const { return diagnostics_[i]; }
  std::vector<Diagnostic>::const_iterator begin() const {
    return diagnostics_.begin();
  }
  std::vector<Diagnostic>::const_iterator end() const {
    return diagnostics_.end();
  }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  bool HasErrors() const;
  size_t NumErrors() const;

  /// True if any diagnostic carries `check_id`.
  bool Has(std::string_view check_id) const;

  /// Distinct check IDs present, sorted.
  std::vector<std::string> CheckIds() const;

  /// One diagnostic per line.
  std::string ToString() const;

  /// JSON array of Diagnostic::ToJson objects, one per finding.
  std::string ToJson() const;

  /// OK when no error diagnostics are present; otherwise InvalidArgument
  /// whose message lists every error (the strict-mode rejection).
  Status ToStatus() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace piet::analysis

#endif  // PIET_ANALYSIS_DIAGNOSTIC_H_
