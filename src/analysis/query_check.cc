#include "analysis/query_check.h"

#include <optional>
#include <string>

#include "gis/layer.h"
#include "temporal/time_dimension.h"
#include "temporal/time_point.h"

namespace piet::analysis {

namespace pietql = core::pietql;
using gis::GeometryKind;
using gis::Layer;

namespace {

/// Coarse type classes for ATTR / TIME literal compatibility: int and double
/// compare fine against each other, everything else must match exactly.
enum class TypeClass { kNumeric, kString, kBool, kNull };

TypeClass ClassOf(const Value& v) {
  if (v.is_numeric()) {
    return TypeClass::kNumeric;
  }
  if (v.is_string()) {
    return TypeClass::kString;
  }
  if (v.is_bool()) {
    return TypeClass::kBool;
  }
  return TypeClass::kNull;
}

std::string_view ClassName(TypeClass c) {
  switch (c) {
    case TypeClass::kNumeric:
      return "numeric";
    case TypeClass::kString:
      return "string";
    case TypeClass::kBool:
      return "bool";
    case TypeClass::kNull:
      return "null";
  }
  return "unknown";
}

const Layer* ResolveLayer(const QueryContext& context,
                          const std::string& name) {
  if (context.gis == nullptr) {
    return nullptr;
  }
  auto layer = context.gis->GetLayer(name);
  return layer.ok() ? layer.ValueOrDie() : nullptr;
}

void CheckLayerExists(const QueryContext& context, const std::string& name,
                      const std::string& entity, DiagnosticList* out) {
  if (ResolveLayer(context, name) == nullptr) {
    out->AddError("query-unknown-layer", entity,
                  "layer '" + name + "' is not registered in the GIS "
                  "dimension instance");
  }
}

void CheckAttrCondition(const QueryContext& context,
                        const pietql::GeoCondition& cond,
                        const std::string& entity, DiagnosticList* out) {
  const Layer* layer = ResolveLayer(context, cond.a.name);
  if (layer == nullptr) {
    return;  // Already reported as query-unknown-layer.
  }

  bool bound_in_schema =
      context.gis->schema().AttOf(cond.attribute).ok();
  std::optional<Value> witness;
  for (gis::GeometryId id : layer->ids()) {
    if (layer->HasAttribute(id, cond.attribute)) {
      auto value = layer->GetAttribute(id, cond.attribute);
      if (value.ok()) {
        witness = value.ValueOrDie();
      }
      break;
    }
  }

  if (!bound_in_schema && !witness.has_value()) {
    out->AddError("query-unknown-attribute", entity,
                  "attribute '" + cond.attribute + "' is neither bound in "
                  "the schema (Att) nor present on any element of layer '" +
                      cond.a.name + "'");
    return;
  }
  if (witness.has_value()) {
    TypeClass have = ClassOf(*witness);
    TypeClass want = ClassOf(cond.literal);
    if (have != want && have != TypeClass::kNull &&
        want != TypeClass::kNull) {
      out->AddError(
          "query-attr-type-mismatch", entity,
          "attribute '" + cond.attribute + "' of layer '" + cond.a.name +
              "' holds " + std::string(ClassName(have)) +
              " values but the literal " + cond.literal.ToString() + " is " +
              std::string(ClassName(want)));
    }
  }
}

void CheckTimeLevel(const std::string& level, const Value* literal,
                    const std::string& entity, DiagnosticList* out) {
  if (!temporal::TimeDimension::HasLevel(level)) {
    out->AddError("query-unknown-time-level", entity,
                  "'" + level + "' is not a level of the Time dimension");
    return;
  }
  if (literal != nullptr) {
    // The level's member domain is computed; probe it with a representative
    // rollup to learn the domain's type.
    temporal::TimeDimension time;
    auto member = time.Rollup(level, temporal::TimePoint(0.0));
    if (member.ok()) {
      TypeClass have = ClassOf(member.ValueOrDie());
      TypeClass want = ClassOf(*literal);
      if (have != want) {
        out->AddError("query-attr-type-mismatch", entity,
                      "TIME." + level + " members are " +
                          std::string(ClassName(have)) + " but the literal " +
                          literal->ToString() + " is " +
                          std::string(ClassName(want)));
      }
    }
  }
}

void CheckSpatialRollup(const QueryContext& context,
                        const std::string& result_layer,
                        const std::string& condition_name,
                        const std::string& entity, DiagnosticList* out) {
  const Layer* layer = ResolveLayer(context, result_layer);
  if (layer == nullptr) {
    return;  // Already reported against the SELECT clause.
  }
  // The MO aggregation rolls point samples up to the result layer's
  // geometries — the computed rollup r^{Pt,polygon}_L. That requires the
  // point->polygon path in H(L) and a polygon-kind layer.
  bool edge_ok = layer->kind() == GeometryKind::kPolygon;
  if (edge_ok) {
    auto graph = context.gis->schema().GraphOf(result_layer);
    edge_ok = graph.ok() &&
              graph.ValueOrDie()->HasNode(GeometryKind::kPolygon) &&
              graph.ValueOrDie()->RollsUp(GeometryKind::kPoint,
                                          GeometryKind::kPolygon);
  }
  if (!edge_ok) {
    out->AddError(
        "query-rollup-edge", entity,
        condition_name + " rolls samples up along point->polygon, an edge "
        "absent from H(L) of result layer '" + result_layer + "' (kind '" +
            std::string(gis::GeometryKindToString(layer->kind())) + "')");
  }
}

}  // namespace

DiagnosticList AnalyzeQuery(const QueryContext& context,
                            const pietql::Query& query) {
  DiagnosticList out;
  if (context.gis == nullptr) {
    out.AddError("query-unknown-layer", "query",
                 "no GIS dimension instance to resolve layers against");
    return out;
  }

  for (const pietql::LayerRef& ref : query.geo.select) {
    CheckLayerExists(context, ref.name, "SELECT layer." + ref.name, &out);
  }

  for (size_t i = 0; i < query.geo.where.size(); ++i) {
    const pietql::GeoCondition& cond = query.geo.where[i];
    std::string entity = "geo WHERE clause " + std::to_string(i + 1);
    switch (cond.kind) {
      case pietql::GeoCondition::Kind::kAttrCompare:
        entity += " (ATTR layer." + cond.a.name + ", " + cond.attribute + ")";
        CheckLayerExists(context, cond.a.name, entity, &out);
        CheckAttrCondition(context, cond, entity, &out);
        break;
      case pietql::GeoCondition::Kind::kIntersection:
      case pietql::GeoCondition::Kind::kContains:
        entity += cond.kind == pietql::GeoCondition::Kind::kIntersection
                      ? " (INTERSECTION layer." + cond.a.name + ", layer." +
                            cond.b.name + ")"
                      : " (CONTAINS layer." + cond.a.name + ", layer." +
                            cond.b.name + ")";
        CheckLayerExists(context, cond.a.name, entity, &out);
        CheckLayerExists(context, cond.b.name, entity, &out);
        break;
    }
  }

  if (!query.mo) {
    return out;
  }
  const pietql::MoQuery& mo = *query.mo;

  bool moft_known = false;
  for (const std::string& name : context.moft_names) {
    if (name == mo.moft) {
      moft_known = true;
      break;
    }
  }
  if (!moft_known) {
    out.AddError("query-unknown-moft", "mo FROM " + mo.moft,
                 "MOFT '" + mo.moft + "' is not registered in the database");
  }

  const std::string result_layer =
      query.geo.select.empty() ? std::string() : query.geo.select.front().name;

  int spatial_modes = 0;
  for (size_t i = 0; i < mo.where.size(); ++i) {
    const pietql::MoCondition& cond = mo.where[i];
    std::string entity = "mo WHERE clause " + std::to_string(i + 1);
    switch (cond.kind) {
      case pietql::MoCondition::Kind::kInsideResult:
        ++spatial_modes;
        CheckSpatialRollup(context, result_layer, "INSIDE RESULT",
                           entity + " (INSIDE RESULT)", &out);
        break;
      case pietql::MoCondition::Kind::kPassesThroughResult:
        ++spatial_modes;
        CheckSpatialRollup(context, result_layer, "PASSES THROUGH RESULT",
                           entity + " (PASSES THROUGH RESULT)", &out);
        break;
      case pietql::MoCondition::Kind::kTimeEquals:
        CheckTimeLevel(cond.time_level, &cond.literal,
                       entity + " (TIME." + cond.time_level + ")", &out);
        break;
      case pietql::MoCondition::Kind::kTimeBetween:
        // Inverted windows are a dead-clause finding: the abstract-domain
        // linter reports them as lint-dead-clause with a swap fix-it.
        break;
      case pietql::MoCondition::Kind::kNearLayer: {
        ++spatial_modes;
        std::string near_entity =
            entity + " (NEAR layer." + cond.near_layer + ")";
        CheckLayerExists(context, cond.near_layer, near_entity, &out);
        const Layer* near = ResolveLayer(context, cond.near_layer);
        if (near != nullptr && near->kind() != GeometryKind::kNode &&
            near->kind() != GeometryKind::kPoint) {
          out.AddError("query-layer-kind", near_entity,
                       "NEAR needs a point/node layer; '" + cond.near_layer +
                           "' holds kind '" +
                           std::string(gis::GeometryKindToString(
                               near->kind())) + "'");
        }
        break;
      }
    }
  }
  if (spatial_modes > 1) {
    out.AddError("query-conflicting-conditions", "mo WHERE clauses",
                 "INSIDE RESULT, PASSES THROUGH RESULT and NEAR are "
                 "mutually exclusive");
  }

  if (mo.group_by_level) {
    CheckTimeLevel(*mo.group_by_level, nullptr,
                   "GROUP BY TIME." + *mo.group_by_level, &out);
  }
  return out;
}

}  // namespace piet::analysis
