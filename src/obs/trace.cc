#include "obs/trace.h"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace piet::obs {

namespace {

void AppendEscaped(std::ostringstream* os, std::string_view s) {
  *os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *os << '\\';
    }
    *os << c;
  }
  *os << '"';
}

/// Fixed-format microseconds with 3 decimals — deterministic across
/// platforms for golden tests.
std::string Micros(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

void AppendChromeEvents(const SpanNode& node, bool* first,
                        std::ostringstream* os) {
  if (!*first) {
    *os << ",";
  }
  *first = false;
  *os << "{\"name\":";
  AppendEscaped(os, node.name);
  *os << ",\"ph\":\"X\",\"ts\":" << Micros(node.start_ns)
      << ",\"dur\":" << Micros(node.duration_ns) << ",\"pid\":1,\"tid\":1";
  if (!node.attrs.empty()) {
    *os << ",\"args\":{";
    for (size_t i = 0; i < node.attrs.size(); ++i) {
      if (i > 0) {
        *os << ",";
      }
      AppendEscaped(os, node.attrs[i].first);
      *os << ":";
      AppendEscaped(os, node.attrs[i].second);
    }
    *os << "}";
  }
  *os << "}";
  for (const SpanNode& child : node.children) {
    AppendChromeEvents(child, first, os);
  }
}

std::string HumanDuration(int64_t ns) {
  char buf[32];
  if (ns < 1'000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  } else if (ns < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus",
                  static_cast<double>(ns) / 1e3);
  } else if (ns < 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fms",
                  static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

void AppendPretty(const SpanNode& node, int depth, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) {
    *os << "  ";
  }
  *os << node.name << "  " << HumanDuration(node.duration_ns);
  if (!node.attrs.empty()) {
    *os << "  [";
    for (size_t i = 0; i < node.attrs.size(); ++i) {
      if (i > 0) {
        *os << " ";
      }
      *os << node.attrs[i].first << "=" << node.attrs[i].second;
    }
    *os << "]";
  }
  *os << "\n";
  for (const SpanNode& child : node.children) {
    AppendPretty(child, depth + 1, os);
  }
}

}  // namespace

const SpanNode* SpanNode::Find(std::string_view span_name) const {
  if (name == span_name) {
    return this;
  }
  for (const SpanNode& child : children) {
    if (const SpanNode* hit = child.Find(span_name)) {
      return hit;
    }
  }
  return nullptr;
}

std::string_view SpanNode::Attr(std::string_view key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) {
      return v;
    }
  }
  return {};
}

std::string SpanNode::ToPrettyString() const {
  std::ostringstream os;
  AppendPretty(*this, 0, &os);
  return os.str();
}

std::string ToChromeTraceJson(const SpanNode& root) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  AppendChromeEvents(root, &first, &os);
  os << "]}";
  return os.str();
}

void WriteChromeTrace(const SpanNode& root, std::ostream& os) {
  os << ToChromeTraceJson(root);
}

TraceCollector::TraceCollector(std::string root_name)
    : epoch_(std::chrono::steady_clock::now()) {
  root_.name = std::move(root_name);
  stack_.push_back(&root_);
}

int64_t TraceCollector::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

SpanNode TraceCollector::Finish() {
  root_.duration_ns = NowNanos();
  stack_.clear();
  finished_ = true;
  return std::move(root_);
}

TraceSpan::TraceSpan(TraceCollector* collector, std::string_view name)
    : collector_(collector) {
  if (collector_ == nullptr || collector_->finished_ ||
      collector_->stack_.empty()) {
    collector_ = nullptr;
    return;
  }
  SpanNode* parent = collector_->stack_.back();
  parent->children.emplace_back();
  node_ = &parent->children.back();
  node_->name = std::string(name);
  node_->start_ns = collector_->NowNanos();
  collector_->stack_.push_back(node_);
}

TraceSpan::~TraceSpan() {
  if (collector_ == nullptr || node_ == nullptr) {
    return;
  }
  node_->duration_ns = collector_->NowNanos() - node_->start_ns;
  if (!collector_->stack_.empty() && collector_->stack_.back() == node_) {
    collector_->stack_.pop_back();
  }
}

void TraceSpan::Attr(std::string_view key, std::string_view value) {
  if (node_ != nullptr) {
    node_->attrs.emplace_back(std::string(key), std::string(value));
  }
}

void TraceSpan::Attr(std::string_view key, int64_t value) {
  if (node_ != nullptr) {
    node_->attrs.emplace_back(std::string(key), std::to_string(value));
  }
}

void TraceSpan::Attr(std::string_view key, uint64_t value) {
  if (node_ != nullptr) {
    node_->attrs.emplace_back(std::string(key), std::to_string(value));
  }
}

void TraceSpan::Attr(std::string_view key, double value) {
  if (node_ != nullptr) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", value);
    node_->attrs.emplace_back(std::string(key), buf);
  }
}

}  // namespace piet::obs
