#ifndef PIET_OBS_TRACE_H_
#define PIET_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace piet::obs {

/// One node of a per-query span tree: a named, timed phase with key/value
/// attributes and strictly nested children. Times are nanoseconds relative
/// to the collector's epoch (the root always starts at 0), so a tree is
/// self-contained and serializable.
struct SpanNode {
  std::string name;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<SpanNode> children;

  int64_t end_ns() const { return start_ns + duration_ns; }

  /// Depth-first search by span name (this node included); nullptr when
  /// absent.
  const SpanNode* Find(std::string_view span_name) const;

  /// The attribute value, or empty when absent.
  std::string_view Attr(std::string_view key) const;

  /// Indented human-readable rendering ("EXPLAIN ANALYZE" output).
  std::string ToPrettyString() const;
};

/// Renders a span tree as Chrome trace_event JSON (complete "X" events,
/// preorder, microsecond timestamps) — loadable in chrome://tracing or
/// Perfetto.
std::string ToChromeTraceJson(const SpanNode& root);
void WriteChromeTrace(const SpanNode& root, std::ostream& os);

/// Builds one query's span tree. Single-threaded by design: spans are
/// opened/closed on the collecting thread only (parallel fan-outs happen
/// *inside* a span), which keeps the tree strictly nested without locks.
/// The collector's presence is the gate — code paths take a
/// TraceCollector* and pass nullptr when not profiling, so the unprofiled
/// cost is one pointer test per site.
class TraceCollector {
 public:
  explicit TraceCollector(std::string root_name);
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Closes the root span and returns the finished tree. Every child span
  /// must already be closed; the collector must not be used afterwards.
  SpanNode Finish();

  /// Nanoseconds since the collector was created.
  int64_t NowNanos() const;

 private:
  friend class TraceSpan;
  std::chrono::steady_clock::time_point epoch_;
  SpanNode root_;
  /// Open spans, outermost first; stack_[0] is always &root_. Only the top
  /// of the stack can gain children, so parent pointers stay stable.
  std::vector<SpanNode*> stack_;
  bool finished_ = false;
};

/// RAII span: opens a child of the collector's innermost open span, closes
/// (and timestamps) it on destruction. A null collector makes every
/// operation a no-op.
class TraceSpan {
 public:
  TraceSpan(TraceCollector* collector, std::string_view name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  void Attr(std::string_view key, std::string_view value);
  void Attr(std::string_view key, int64_t value);
  void Attr(std::string_view key, uint64_t value);
  void Attr(std::string_view key, double value);

 private:
  TraceCollector* collector_;
  SpanNode* node_ = nullptr;
};

}  // namespace piet::obs

#endif  // PIET_OBS_TRACE_H_
