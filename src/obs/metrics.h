#ifndef PIET_OBS_METRICS_H_
#define PIET_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace piet::obs {

/// Process-wide observability switch. Reads the PIET_OBS environment
/// variable once on first use ("0", "false", "off" or unset = disabled;
/// anything else = enabled); SetEnabled overrides it for the rest of the
/// process. Every instrumentation site in the codebase is gated on this,
/// so the disabled cost is one relaxed load + branch per site — and the
/// sites live at query/seal/build granularity, never inside a row loop.
namespace internal {
extern std::atomic<int> g_enabled;  // -1 = not yet read from the env.
bool InitEnabledFromEnv();
}  // namespace internal

inline bool Enabled() {
  int v = internal::g_enabled.load(std::memory_order_relaxed);
  if (v >= 0) {
    return v != 0;
  }
  return internal::InitEnabledFromEnv();
}

void SetEnabled(bool on);

/// Number of per-thread shards a metric's storage is split across. Threads
/// are assigned a fixed shard on first use (sequential id mod kShards), so
/// the write path is a relaxed fetch_add on a line other cores rarely
/// touch; readers sum the shards.
inline constexpr size_t kShards = 16;

/// The shard of the calling thread (stable for the thread's lifetime).
size_t ThisThreadShard();

/// Fixed latency-histogram bucket bounds in nanoseconds: powers of 4 from
/// 1us to ~4.3s, plus an overflow bucket. Bucket i counts records with
/// ns <= kBucketBoundsNs[i] (and > the previous bound).
inline constexpr size_t kNumBuckets = 13;
inline constexpr std::array<int64_t, kNumBuckets - 1> kBucketBoundsNs = {
    1'000,          4'000,          16'000,        64'000,
    256'000,        1'024'000,      4'096'000,     16'384'000,
    65'536'000,     262'144'000,    1'048'576'000, 4'294'967'296,
};

/// A monotone named counter. Add is a relaxed atomic add on the calling
/// thread's shard when observability is enabled, a no-op otherwise.
class Counter {
 public:
  void Add(int64_t n) {
    if (!Enabled()) {
      return;
    }
    shards_[ThisThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all shards. Concurrent adds may or may not be included
  /// (relaxed reads); exact once writers are quiescent.
  int64_t Value() const;

  void ResetValue();

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

/// A last-write-wins instantaneous value (e.g. "overlay cells", "chunk
/// imbalance of the last plan"). Not sharded — sets are rare.
class Gauge {
 public:
  void Set(int64_t v) {
    if (!Enabled()) {
      return;
    }
    v_.store(v, std::memory_order_relaxed);
  }

  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

  void ResetValue() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// A fixed-bucket latency histogram (bounds in kBucketBoundsNs). Record is
/// three relaxed adds on the calling thread's shard when enabled.
class Histogram {
 public:
  void RecordNanos(int64_t ns);

  uint64_t Count() const;
  int64_t SumNanos() const;
  /// Merged bucket counts, size kNumBuckets (last = overflow).
  std::vector<uint64_t> Buckets() const;

  void ResetValue();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<int64_t> sum_ns{0};
  };
  std::array<Shard, kShards> shards_;
};

/// RAII timer recording its scope's wall time into a histogram. The
/// enabled check happens once at construction; a scope timed while
/// disabled records nothing even if observability flips on meanwhile.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(Enabled() ? hist : nullptr) {
    if (hist_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->RecordNanos(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - start_)
                             .count());
    }
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Merged point-in-time values of every registered metric, with
/// deterministic (name-sorted) iteration for the exporters.
struct HistogramData {
  uint64_t count = 0;
  int64_t sum_ns = 0;
  std::vector<uint64_t> buckets;  // size kNumBuckets, last = overflow.
};

struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  /// 0 / nullptr when the metric was never registered.
  int64_t counter(std::string_view name) const;
  int64_t gauge(std::string_view name) const;
  const HistogramData* histogram(std::string_view name) const;

  /// Human-readable one-metric-per-line dump.
  std::string ToText() const;
  /// Stable machine-readable dump: {"counters":{...},"gauges":{...},
  /// "histograms":{"name":{"count":n,"sum_ns":n,"buckets":[...]}}}.
  std::string ToJson() const;
};

/// The process-wide registry of named metrics. Registration (Get*) takes a
/// mutex once per call site — callers on hot paths cache the returned
/// reference; handles stay valid for the process lifetime (Reset zeroes
/// values but never invalidates a handle).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  std::string DumpText() const { return Snapshot().ToText(); }
  std::string DumpJson() const { return Snapshot().ToJson(); }

  /// Zeroes every value, keeping registrations (and handles) intact.
  /// Tests only; callers must be quiescent.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace piet::obs

#endif  // PIET_OBS_METRICS_H_
