#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace piet::obs {

namespace internal {

std::atomic<int> g_enabled{-1};

bool InitEnabledFromEnv() {
  const char* env = std::getenv("PIET_OBS");
  bool on = env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0 &&
            std::strcmp(env, "false") != 0 && std::strcmp(env, "off") != 0;
  // First writer wins so a concurrent SetEnabled is never overwritten.
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                    std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed) != 0;
}

}  // namespace internal

void SetEnabled(bool on) {
  internal::g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::ResetValue() {
  for (Shard& shard : shards_) {
    shard.v.store(0, std::memory_order_relaxed);
  }
}

void Histogram::RecordNanos(int64_t ns) {
  if (!Enabled()) {
    return;
  }
  size_t bucket = 0;
  while (bucket < kBucketBoundsNs.size() && ns > kBucketBoundsNs[bucket]) {
    ++bucket;
  }
  Shard& shard = shards_[ThisThreadShard()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum_ns.fetch_add(ns, std::memory_order_relaxed);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t Histogram::SumNanos() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum_ns.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::Buckets() const {
  std::vector<uint64_t> out(kNumBuckets, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      out[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::ResetValue() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum_ns.store(0, std::memory_order_relaxed);
  }
}

int64_t MetricsSnapshot::counter(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

int64_t MetricsSnapshot::gauge(std::string_view name) const {
  auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0 : it->second;
}

const HistogramData* MetricsSnapshot::histogram(std::string_view name) const {
  auto it = histograms.find(std::string(name));
  return it == histograms.end() ? nullptr : &it->second;
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    os << "counter " << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    os << "gauge " << name << " = " << value << "\n";
  }
  for (const auto& [name, hist] : histograms) {
    double mean_us =
        hist.count == 0
            ? 0.0
            : static_cast<double>(hist.sum_ns) /
                  (1000.0 * static_cast<double>(hist.count));
    os << "histogram " << name << " count=" << hist.count
       << " sum_ns=" << hist.sum_ns << " mean_us=" << mean_us << "\n";
  }
  return os.str();
}

namespace {

void AppendJsonString(std::ostringstream* os, std::string_view s) {
  *os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *os << '\\';
    }
    *os << c;
  }
  *os << '"';
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) {
      os << ",";
    }
    first = false;
    AppendJsonString(&os, name);
    os << ":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) {
      os << ",";
    }
    first = false;
    AppendJsonString(&os, name);
    os << ":" << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) {
      os << ",";
    }
    first = false;
    AppendJsonString(&os, name);
    os << ":{\"count\":" << hist.count << ",\"sum_ns\":" << hist.sum_ns
       << ",\"buckets\":[";
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      if (i > 0) {
        os << ",";
      }
      os << hist.buckets[i];
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->Value());
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramData data;
    data.count = hist->Count();
    data.sum_ns = hist->SumNanos();
    data.buckets = hist->Buckets();
    snap.histograms.emplace(name, std::move(data));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->ResetValue();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->ResetValue();
  }
  for (auto& [name, hist] : histograms_) {
    hist->ResetValue();
  }
}

}  // namespace piet::obs
