#include "geometry/box.h"

#include <sstream>

namespace piet::geometry {

std::string BoundingBox::ToString() const {
  std::ostringstream os;
  if (empty()) {
    os << "Box[empty]";
  } else {
    os << "Box[(" << min_x << ", " << min_y << ") - (" << max_x << ", "
       << max_y << ")]";
  }
  return os.str();
}

}  // namespace piet::geometry
