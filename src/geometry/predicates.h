#ifndef PIET_GEOMETRY_PREDICATES_H_
#define PIET_GEOMETRY_PREDICATES_H_

#include <optional>

#include "geometry/point.h"

namespace piet::geometry {

/// Sign of the signed area of triangle (a, b, c): +1 counter-clockwise,
/// -1 clockwise, 0 collinear. Uses an adaptive evaluation: a fast double
/// determinant with a forward error bound, falling back to long-double
/// evaluation for near-degenerate inputs.
int Orientation(Point a, Point b, Point c);

/// True if `p` lies on the closed segment [a, b] (collinear and within the
/// bounding box of the segment).
bool OnSegment(Point p, Point a, Point b);

/// How two closed segments relate.
enum class SegmentIntersectionKind {
  kNone = 0,       ///< Disjoint.
  kPoint,          ///< Exactly one point in common (proper or endpoint touch).
  kOverlap,        ///< Collinear with a shared sub-segment.
};

/// Result of intersecting two closed segments.
struct SegmentIntersection {
  SegmentIntersectionKind kind = SegmentIntersectionKind::kNone;
  /// For kPoint: the point. For kOverlap: one endpoint of the shared part.
  Point p0;
  /// For kOverlap: the other endpoint of the shared part.
  Point p1;
};

/// Computes the intersection of closed segments [a0,a1] and [b0,b1].
SegmentIntersection IntersectSegments(Point a0, Point a1, Point b0, Point b1);

/// True if the closed segments share at least one point.
bool SegmentsIntersect(Point a0, Point a1, Point b0, Point b1);

}  // namespace piet::geometry

#endif  // PIET_GEOMETRY_PREDICATES_H_
