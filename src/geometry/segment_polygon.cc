#include "geometry/segment_polygon.h"

#include <algorithm>
#include <cmath>

#include "geometry/predicates.h"

namespace piet::geometry {

namespace {

// Appends to `cuts` every parameter t in [0,1] at which segment `s`
// meets edge [a, b]. Collinear overlaps contribute both overlap endpoints.
void CollectEdgeCuts(const Segment& s, Point a, Point b,
                     std::vector<double>* cuts) {
  SegmentIntersection isect = IntersectSegments(s.a, s.b, a, b);
  if (isect.kind == SegmentIntersectionKind::kNone) {
    return;
  }
  Point d = s.b - s.a;
  double len2 = Dot(d, d);
  auto param_of = [&](Point p) {
    if (len2 == 0.0) {
      return 0.0;
    }
    return std::clamp(Dot(p - s.a, d) / len2, 0.0, 1.0);
  };
  cuts->push_back(param_of(isect.p0));
  if (isect.kind == SegmentIntersectionKind::kOverlap) {
    cuts->push_back(param_of(isect.p1));
  }
}

// Merges sorted candidate cut parameters into maximal inside intervals by
// midpoint testing each elementary sub-interval against the polygon.
std::vector<ParamInterval> BuildIntervals(const Segment& s,
                                          const Polygon& polygon,
                                          std::vector<double> cuts) {
  cuts.push_back(0.0);
  cuts.push_back(1.0);
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<ParamInterval> out;
  auto push = [&out](double t0, double t1) {
    if (!out.empty() && out.back().t1 == t0) {
      out.back().t1 = t1;  // Coalesce adjacent intervals.
    } else {
      out.push_back({t0, t1});
    }
  };

  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    double t0 = cuts[i];
    double t1 = cuts[i + 1];
    Point mid = s.At((t0 + t1) / 2.0);
    if (polygon.Contains(mid)) {
      push(t0, t1);
    }
  }

  // Isolated touch points: a cut point inside the polygon that is not
  // covered by any interval contributes a zero-length interval.
  for (double t : cuts) {
    bool covered = false;
    for (const ParamInterval& iv : out) {
      if (t >= iv.t0 && t <= iv.t1) {
        covered = true;
        break;
      }
    }
    if (!covered && polygon.Contains(s.At(t))) {
      out.push_back({t, t});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ParamInterval& a, const ParamInterval& b) {
              return a.t0 < b.t0;
            });
  return out;
}

}  // namespace

std::vector<ParamInterval> SegmentInsideIntervals(const Segment& s,
                                                  const Polygon& polygon) {
  if (!polygon.Bounds().Intersects(s.Bounds())) {
    return {};
  }
  if (s.a == s.b) {
    if (polygon.Contains(s.a)) {
      return {{0.0, 1.0}};
    }
    return {};
  }
  std::vector<double> cuts;
  const Ring& shell = polygon.shell();
  for (size_t i = 0; i < shell.size(); ++i) {
    Segment e = shell.edge(i);
    CollectEdgeCuts(s, e.a, e.b, &cuts);
  }
  for (const Ring& hole : polygon.holes()) {
    for (size_t i = 0; i < hole.size(); ++i) {
      Segment e = hole.edge(i);
      CollectEdgeCuts(s, e.a, e.b, &cuts);
    }
  }
  return BuildIntervals(s, polygon, std::move(cuts));
}

bool SegmentIntersectsPolygon(const Segment& s, const Polygon& polygon) {
  return !SegmentInsideIntervals(s, polygon).empty();
}

std::vector<ParamInterval> SegmentWithinDistanceIntervals(const Segment& s,
                                                          Point center,
                                                          double radius) {
  // |s.a + t*d - center|^2 <= r^2, a quadratic a2*t^2 + a1*t + a0 <= 0.
  Point d = s.b - s.a;
  Point m = s.a - center;
  double a2 = Dot(d, d);
  double a1 = 2.0 * Dot(m, d);
  double a0 = Dot(m, m) - radius * radius;

  if (a2 == 0.0) {
    // Stationary leg: inside the ball for all of [0,1] or none of it.
    if (a0 <= 0.0) {
      return {{0.0, 1.0}};
    }
    return {};
  }

  double disc = a1 * a1 - 4.0 * a2 * a0;
  if (disc < 0.0) {
    return {};
  }
  double sq = std::sqrt(disc);
  double r0 = (-a1 - sq) / (2.0 * a2);
  double r1 = (-a1 + sq) / (2.0 * a2);
  double t0 = std::max(0.0, std::min(r0, r1));
  double t1 = std::min(1.0, std::max(r0, r1));
  if (t0 > t1) {
    return {};
  }
  return {{t0, t1}};
}

}  // namespace piet::geometry
