#include "geometry/segment.h"

#include <algorithm>

#include "geometry/predicates.h"

namespace piet::geometry {

double Segment::ClosestParam(Point p) const {
  Point d = b - a;
  double len2 = Dot(d, d);
  if (len2 == 0.0) {
    return 0.0;
  }
  return std::clamp(Dot(p - a, d) / len2, 0.0, 1.0);
}

double SegmentDistance(const Segment& s1, const Segment& s2) {
  if (SegmentsIntersect(s1.a, s1.b, s2.a, s2.b)) {
    return 0.0;
  }
  return std::min({s1.DistanceTo(s2.a), s1.DistanceTo(s2.b),
                   s2.DistanceTo(s1.a), s2.DistanceTo(s1.b)});
}

}  // namespace piet::geometry
