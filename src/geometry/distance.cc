#include "geometry/distance.h"

#include <algorithm>
#include <limits>

namespace piet::geometry {

namespace {

// Minimum distance from a segment to every ring edge of the polygon.
double MinEdgeDistance(const Segment& s, const Polygon& polygon) {
  double best = std::numeric_limits<double>::infinity();
  const Ring& shell = polygon.shell();
  for (size_t i = 0; i < shell.size(); ++i) {
    best = std::min(best, SegmentDistance(s, shell.edge(i)));
  }
  for (const Ring& hole : polygon.holes()) {
    for (size_t i = 0; i < hole.size(); ++i) {
      best = std::min(best, SegmentDistance(s, hole.edge(i)));
    }
  }
  return best;
}

}  // namespace

double DistanceToPolygon(Point p, const Polygon& polygon) {
  if (polygon.Contains(p)) {
    return 0.0;
  }
  double best = std::numeric_limits<double>::infinity();
  const Ring& shell = polygon.shell();
  for (size_t i = 0; i < shell.size(); ++i) {
    best = std::min(best, shell.edge(i).DistanceTo(p));
  }
  for (const Ring& hole : polygon.holes()) {
    for (size_t i = 0; i < hole.size(); ++i) {
      best = std::min(best, hole.edge(i).DistanceTo(p));
    }
  }
  return best;
}

double SegmentPolygonDistance(const Segment& s, const Polygon& polygon) {
  // Any endpoint inside (or edge crossing) => 0.
  if (polygon.Contains(s.a) || polygon.Contains(s.b)) {
    return 0.0;
  }
  return MinEdgeDistance(s, polygon);
}

double PolylinePolygonDistance(const Polyline& line, const Polygon& polygon) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < line.num_segments(); ++i) {
    best = std::min(best, SegmentPolygonDistance(line.segment(i), polygon));
    if (best == 0.0) {
      return 0.0;
    }
  }
  return best;
}

double PolygonDistance(const Polygon& a, const Polygon& b) {
  if (a.Intersects(b)) {
    return 0.0;
  }
  double best = std::numeric_limits<double>::infinity();
  const Ring& shell = a.shell();
  for (size_t i = 0; i < shell.size(); ++i) {
    best = std::min(best, MinEdgeDistance(shell.edge(i), b));
  }
  return best;
}

double DistanceToPolyline(Point p, const Polyline& line) {
  return line.DistanceTo(p);
}

double PolylineDistance(const Polyline& a, const Polyline& b) {
  if (a.Intersects(b)) {
    return 0.0;
  }
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < a.num_segments(); ++i) {
    for (size_t j = 0; j < b.num_segments(); ++j) {
      best = std::min(best, SegmentDistance(a.segment(i), b.segment(j)));
    }
  }
  return best;
}

}  // namespace piet::geometry
