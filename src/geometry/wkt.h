#ifndef PIET_GEOMETRY_WKT_H_
#define PIET_GEOMETRY_WKT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "geometry/polygon.h"
#include "geometry/polyline.h"

namespace piet::geometry {

/// Well-Known-Text serialization for the geometry kinds the paper's layers
/// use (POINT, LINESTRING, POLYGON with holes).
std::string ToWkt(Point p);
std::string ToWkt(const Polyline& line);
std::string ToWkt(const Polygon& polygon);

/// Parsers; accept the exact output of the writers plus arbitrary internal
/// whitespace and case-insensitive tags.
Result<Point> PointFromWkt(std::string_view wkt);
Result<Polyline> PolylineFromWkt(std::string_view wkt);
Result<Polygon> PolygonFromWkt(std::string_view wkt);

}  // namespace piet::geometry

#endif  // PIET_GEOMETRY_WKT_H_
