#include "geometry/polygon.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "geometry/predicates.h"

namespace piet::geometry {

Ring::Ring(std::vector<Point> vertices) : vertices_(std::move(vertices)) {
  for (const Point& p : vertices_) {
    bounds_.ExtendWith(p);
  }
}

Result<Ring> Ring::Create(std::vector<Point> vertices) {
  // Drop a repeated closing vertex if the caller included one.
  if (vertices.size() >= 2 && vertices.front() == vertices.back()) {
    vertices.pop_back();
  }
  if (vertices.size() < 3) {
    return Status::InvalidArgument("ring needs at least 3 distinct vertices");
  }
  for (size_t i = 0; i < vertices.size(); ++i) {
    if (vertices[i] == vertices[(i + 1) % vertices.size()]) {
      return Status::InvalidArgument("ring has duplicate consecutive vertex");
    }
  }
  Ring ring(std::move(vertices));
  if (ring.SignedArea() == 0.0) {
    return Status::InvalidArgument("ring is degenerate (zero area)");
  }
  if (!ring.IsCounterClockwise()) {
    ring.Reverse();
  }
  if (!ring.IsSimple()) {
    return Status::InvalidArgument("ring is self-intersecting");
  }
  return ring;
}

double Ring::SignedArea() const {
  double acc = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point& p = vertices_[i];
    const Point& q = vertices_[(i + 1) % vertices_.size()];
    acc += Cross(p, q);
  }
  return acc / 2.0;
}

double Ring::Area() const { return std::abs(SignedArea()); }

double Ring::Perimeter() const {
  double acc = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    acc += edge(i).Length();
  }
  return acc;
}

Point Ring::Centroid() const {
  // Area-weighted centroid; falls back to vertex mean for degenerate rings.
  double a = SignedArea();
  if (a == 0.0) {
    Point mean;
    for (const Point& p : vertices_) {
      mean = mean + p;
    }
    return mean / static_cast<double>(vertices_.size());
  }
  double cx = 0.0, cy = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point& p = vertices_[i];
    const Point& q = vertices_[(i + 1) % vertices_.size()];
    double w = Cross(p, q);
    cx += (p.x + q.x) * w;
    cy += (p.y + q.y) * w;
  }
  return Point(cx / (6.0 * a), cy / (6.0 * a));
}

bool Ring::IsConvex() const {
  int sign = 0;
  size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    int o = Orientation(vertices_[i], vertices_[(i + 1) % n],
                        vertices_[(i + 2) % n]);
    if (o == 0) {
      continue;
    }
    if (sign == 0) {
      sign = o;
    } else if (o != sign) {
      return false;
    }
  }
  return true;
}

bool Ring::IsSimple() const {
  size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    Segment ei = edge(i);
    for (size_t j = i + 1; j < n; ++j) {
      // Adjacent edges share a vertex by construction; skip them.
      if (j == i || (j + 1) % n == i || (i + 1) % n == j) {
        continue;
      }
      if (SegmentsIntersect(ei.a, ei.b, edge(j).a, edge(j).b)) {
        return false;
      }
    }
  }
  return true;
}

PointLocation Ring::Locate(Point p) const {
  if (!bounds_.Contains(p)) {
    return PointLocation::kOutside;
  }
  size_t n = vertices_.size();
  bool inside = false;
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    if (OnSegment(p, a, b)) {
      return PointLocation::kBoundary;
    }
    // Ray casting toward +x, with the usual half-open rule on y.
    if ((a.y > p.y) != (b.y > p.y)) {
      double x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (p.x < x_cross) {
        inside = !inside;
      }
    }
  }
  return inside ? PointLocation::kInside : PointLocation::kOutside;
}

void Ring::Reverse() { std::reverse(vertices_.begin(), vertices_.end()); }

std::string Ring::ToString() const {
  std::ostringstream os;
  os << "Ring[" << vertices_.size() << " pts, area=" << Area() << "]";
  return os.str();
}

Polygon::Polygon(Ring shell, std::vector<Ring> holes)
    : shell_(std::move(shell)), holes_(std::move(holes)) {}

Result<Polygon> Polygon::Create(Ring shell, std::vector<Ring> holes) {
  for (const Ring& hole : holes) {
    if (shell.Locate(hole.Centroid()) == PointLocation::kOutside) {
      return Status::InvalidArgument("hole centroid outside shell");
    }
  }
  return Polygon(std::move(shell), std::move(holes));
}

double Polygon::Area() const {
  double a = shell_.Area();
  for (const Ring& h : holes_) {
    a -= h.Area();
  }
  return a;
}

double Polygon::Perimeter() const {
  double p = shell_.Perimeter();
  for (const Ring& h : holes_) {
    p += h.Perimeter();
  }
  return p;
}

Point Polygon::Centroid() const {
  if (holes_.empty()) {
    return shell_.Centroid();
  }
  // Weighted combination: shell centroid weighted by shell area minus each
  // hole centroid weighted by hole area.
  double total = shell_.Area();
  Point acc = shell_.Centroid() * total;
  for (const Ring& h : holes_) {
    acc = acc - h.Centroid() * h.Area();
    total -= h.Area();
  }
  if (total == 0.0) {
    return shell_.Centroid();
  }
  return acc / total;
}

PointLocation Polygon::Locate(Point p) const {
  PointLocation loc = shell_.Locate(p);
  if (loc != PointLocation::kInside) {
    return loc;
  }
  for (const Ring& h : holes_) {
    PointLocation hl = h.Locate(p);
    if (hl == PointLocation::kBoundary) {
      return PointLocation::kBoundary;
    }
    if (hl == PointLocation::kInside) {
      return PointLocation::kOutside;
    }
  }
  return PointLocation::kInside;
}

bool Polygon::IntersectsSegment(const Segment& s) const {
  if (!Bounds().Intersects(s.Bounds())) {
    return false;
  }
  if (Contains(s.a) || Contains(s.b)) {
    return true;
  }
  for (size_t i = 0; i < shell_.size(); ++i) {
    Segment e = shell_.edge(i);
    if (SegmentsIntersect(e.a, e.b, s.a, s.b)) {
      return true;
    }
  }
  return false;
}

bool Polygon::Intersects(const Polygon& other) const {
  if (!Bounds().Intersects(other.Bounds())) {
    return false;
  }
  // Any vertex containment?
  for (const Point& p : other.shell_.vertices()) {
    if (Contains(p)) {
      return true;
    }
  }
  for (const Point& p : shell_.vertices()) {
    if (other.Contains(p)) {
      return true;
    }
  }
  // Any edge crossing?
  for (size_t i = 0; i < shell_.size(); ++i) {
    Segment e = shell_.edge(i);
    for (size_t j = 0; j < other.shell_.size(); ++j) {
      Segment f = other.shell_.edge(j);
      if (SegmentsIntersect(e.a, e.b, f.a, f.b)) {
        return true;
      }
    }
  }
  return false;
}

bool Polygon::ContainsPolygon(const Polygon& other) const {
  if (!Bounds().Contains(other.Bounds())) {
    return false;
  }
  for (const Point& p : other.shell_.vertices()) {
    if (!Contains(p)) {
      return false;
    }
  }
  // Vertices inside is not sufficient for non-convex shells: edges could
  // still cross. Check for proper edge crossings.
  for (size_t i = 0; i < shell_.size(); ++i) {
    Segment e = shell_.edge(i);
    for (size_t j = 0; j < other.shell_.size(); ++j) {
      Segment f = other.shell_.edge(j);
      auto isect = IntersectSegments(e.a, e.b, f.a, f.b);
      if (isect.kind == SegmentIntersectionKind::kPoint) {
        // A touching point (at a segment endpoint) is fine; a proper
        // crossing — intersection strictly interior to both segments —
        // means `other` leaves this polygon.
        Point p = isect.p0;
        bool strict_e = p != e.a && p != e.b;
        bool strict_f = p != f.a && p != f.b;
        if (strict_e && strict_f) {
          return false;
        }
      }
    }
  }
  return true;
}

std::string Polygon::ToString() const {
  std::ostringstream os;
  os << "Polygon[shell " << shell_.size() << " pts, " << holes_.size()
     << " holes, area=" << Area() << "]";
  return os.str();
}

Polygon MakeRectangle(double x0, double y0, double x1, double y1) {
  if (x0 > x1) {
    std::swap(x0, x1);
  }
  if (y0 > y1) {
    std::swap(y0, y1);
  }
  Ring shell({Point(x0, y0), Point(x1, y0), Point(x1, y1), Point(x0, y1)});
  return Polygon(std::move(shell));
}

Polygon MakeRegularPolygon(Point center, double radius, int sides,
                           double phase) {
  std::vector<Point> pts;
  pts.reserve(static_cast<size_t>(sides));
  for (int i = 0; i < sides; ++i) {
    double angle = phase + 2.0 * M_PI * i / sides;
    pts.emplace_back(center.x + radius * std::cos(angle),
                     center.y + radius * std::sin(angle));
  }
  return Polygon(Ring(std::move(pts)));
}

}  // namespace piet::geometry
