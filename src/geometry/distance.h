#ifndef PIET_GEOMETRY_DISTANCE_H_
#define PIET_GEOMETRY_DISTANCE_H_

#include "geometry/polygon.h"
#include "geometry/polyline.h"

namespace piet::geometry {

/// Minimum-distance kernels between the layer geometry kinds (0 whenever
/// the closed shapes share a point). These power proximity conditions
/// between whole geometries — e.g. "neighborhoods within 100 m of the
/// river".

/// Distance from `p` to the closed polygon (0 when inside or on it).
double DistanceToPolygon(Point p, const Polygon& polygon);

/// Minimum distance between a closed segment and a closed polygon.
double SegmentPolygonDistance(const Segment& s, const Polygon& polygon);

/// Minimum distance between a polyline and a closed polygon.
double PolylinePolygonDistance(const Polyline& line, const Polygon& polygon);

/// Minimum distance between two closed polygons (0 on overlap/touch).
double PolygonDistance(const Polygon& a, const Polygon& b);

/// Minimum distance between a point and a polyline (alias of the member,
/// for symmetry).
double DistanceToPolyline(Point p, const Polyline& line);

/// Minimum distance between two polylines.
double PolylineDistance(const Polyline& a, const Polyline& b);

}  // namespace piet::geometry

#endif  // PIET_GEOMETRY_DISTANCE_H_
