#ifndef PIET_GEOMETRY_SEGMENT_H_
#define PIET_GEOMETRY_SEGMENT_H_

#include "geometry/box.h"
#include "geometry/point.h"

namespace piet::geometry {

/// A closed line segment [a, b].
struct Segment {
  Point a;
  Point b;

  constexpr Segment() = default;
  constexpr Segment(Point pa, Point pb) : a(pa), b(pb) {}

  double Length() const { return Distance(a, b); }
  double SquaredLength() const { return SquaredDistance(a, b); }

  /// Point at parameter t in [0, 1] along the segment.
  Point At(double t) const { return a + (b - a) * t; }

  BoundingBox Bounds() const { return BoundingBox::FromPoints(a, b); }

  /// Parameter in [0, 1] of the point on the segment closest to `p`.
  double ClosestParam(Point p) const;

  /// The point on the segment closest to `p`.
  Point ClosestPoint(Point p) const { return At(ClosestParam(p)); }

  /// Minimum distance from `p` to the segment.
  double DistanceTo(Point p) const { return Distance(p, ClosestPoint(p)); }
};

/// Minimum distance between two segments.
double SegmentDistance(const Segment& s1, const Segment& s2);

}  // namespace piet::geometry

#endif  // PIET_GEOMETRY_SEGMENT_H_
