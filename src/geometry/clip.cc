#include "geometry/clip.h"

#include <algorithm>
#include <cmath>

#include "geometry/predicates.h"

namespace piet::geometry {

namespace {

// Intersection of the (infinite) line through (a, b) with segment (p, q),
// assuming they are known to cross. Solves the standard parametric system.
Point LineSegmentCross(Point a, Point b, Point p, Point q) {
  Point r = b - a;
  Point s = q - p;
  double denom = Cross(r, s);
  // Caller guarantees non-parallel; clamp defensively.
  double u = denom != 0.0 ? Cross(p - a, r) / denom : 0.0;
  u = std::clamp(u, 0.0, 1.0);
  return p + s * u;
}

// Signed "inside" test relative to directed clip edge (a -> b) of a CCW
// ring: inside is the left half-plane (orientation >= 0 keeps boundary).
bool InsideEdge(Point p, Point a, Point b) { return Orientation(a, b, p) >= 0; }

}  // namespace

std::optional<Ring> ClipRingToConvex(const Ring& subject,
                                     const Ring& convex_clip) {
  std::vector<Point> output = subject.vertices();
  size_t nclip = convex_clip.size();

  for (size_t e = 0; e < nclip && !output.empty(); ++e) {
    Point ca = convex_clip.vertices()[e];
    Point cb = convex_clip.vertices()[(e + 1) % nclip];

    std::vector<Point> input;
    input.swap(output);
    if (input.empty()) {
      break;
    }
    Point prev = input.back();
    bool prev_inside = InsideEdge(prev, ca, cb);
    for (const Point& cur : input) {
      bool cur_inside = InsideEdge(cur, ca, cb);
      if (cur_inside) {
        if (!prev_inside) {
          output.push_back(LineSegmentCross(ca, cb, prev, cur));
        }
        output.push_back(cur);
      } else if (prev_inside) {
        output.push_back(LineSegmentCross(ca, cb, prev, cur));
      }
      prev = cur;
      prev_inside = cur_inside;
    }
  }

  // Deduplicate consecutive (possibly coincident after clipping) vertices.
  std::vector<Point> cleaned;
  for (const Point& p : output) {
    if (cleaned.empty() || !(cleaned.back() == p)) {
      cleaned.push_back(p);
    }
  }
  while (cleaned.size() >= 2 && cleaned.front() == cleaned.back()) {
    cleaned.pop_back();
  }
  if (cleaned.size() < 3) {
    return std::nullopt;
  }
  Ring ring(std::move(cleaned));
  if (std::abs(ring.SignedArea()) <= 0.0) {
    return std::nullopt;
  }
  if (!ring.IsCounterClockwise()) {
    ring.Reverse();
  }
  return ring;
}

std::optional<Polygon> ConvexIntersection(const Polygon& a, const Polygon& b) {
  if (!a.Bounds().Intersects(b.Bounds())) {
    return std::nullopt;
  }
  std::optional<Ring> ring = ClipRingToConvex(a.shell(), b.shell());
  if (!ring) {
    return std::nullopt;
  }
  return Polygon(std::move(*ring));
}

double ConvexIntersectionArea(const Polygon& a, const Polygon& b) {
  std::optional<Polygon> isect = ConvexIntersection(a, b);
  return isect ? isect->Area() : 0.0;
}

std::optional<Ring> ConvexHull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), PointLexLess());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  if (points.size() < 3) {
    return std::nullopt;
  }

  std::vector<Point> hull(2 * points.size());
  size_t k = 0;
  // Lower hull.
  for (const Point& p : points) {
    while (k >= 2 && Orientation(hull[k - 2], hull[k - 1], p) <= 0) {
      --k;
    }
    hull[k++] = p;
  }
  // Upper hull.
  size_t lower = k + 1;
  for (size_t i = points.size() - 1; i-- > 0;) {
    const Point& p = points[i];
    while (k >= lower && Orientation(hull[k - 2], hull[k - 1], p) <= 0) {
      --k;
    }
    hull[k++] = p;
  }
  hull.resize(k - 1);
  if (hull.size() < 3) {
    return std::nullopt;
  }
  return Ring(std::move(hull));
}

}  // namespace piet::geometry
