#ifndef PIET_GEOMETRY_SEGMENT_POLYGON_H_
#define PIET_GEOMETRY_SEGMENT_POLYGON_H_

#include <vector>

#include "geometry/polygon.h"
#include "geometry/segment.h"

namespace piet::geometry {

/// A closed parameter interval [t0, t1] within [0, 1] along a segment.
struct ParamInterval {
  double t0 = 0.0;
  double t1 = 0.0;

  double Length() const { return t1 - t0; }

  friend bool operator==(const ParamInterval& a, const ParamInterval& b) {
    return a.t0 == b.t0 && a.t1 == b.t1;
  }
};

/// Computes the maximal parameter intervals of segment `s` (t in [0, 1])
/// whose points lie inside or on the boundary of the *closed* polygon.
///
/// This is the geometric heart of the paper's trajectory queries: for a
/// linearly-interpolated trajectory leg, "when is the object in region g?"
/// reduces to exactly this computation (query types 4, 5, 7, 8 and the
/// Sec. 5 Piet evaluation all bottom out here).
///
/// Degenerate grazing contacts (a single touch point) are returned as
/// zero-length intervals, which callers typically drop when measuring
/// durations but keep for passes-through semantics.
std::vector<ParamInterval> SegmentInsideIntervals(const Segment& s,
                                                  const Polygon& polygon);

/// True if any point of `s` lies inside or on `polygon`.
bool SegmentIntersectsPolygon(const Segment& s, const Polygon& polygon);

/// Computes the parameter intervals of `s` whose points are within distance
/// `radius` of `center` (ball intersection; solves the quadratic in t).
/// Used for proximity queries (Sec. 4 query 6: "within 100m of a school").
std::vector<ParamInterval> SegmentWithinDistanceIntervals(const Segment& s,
                                                          Point center,
                                                          double radius);

}  // namespace piet::geometry

#endif  // PIET_GEOMETRY_SEGMENT_POLYGON_H_
