#include "geometry/polyline.h"

#include <algorithm>
#include <sstream>

#include "geometry/predicates.h"

namespace piet::geometry {

Polyline::Polyline(std::vector<Point> vertices)
    : vertices_(std::move(vertices)) {
  cum_length_.reserve(vertices_.size());
  double acc = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (i > 0) {
      acc += Distance(vertices_[i - 1], vertices_[i]);
    }
    cum_length_.push_back(acc);
    bounds_.ExtendWith(vertices_[i]);
  }
}

Result<Polyline> Polyline::Create(std::vector<Point> vertices) {
  if (vertices.size() < 2) {
    return Status::InvalidArgument("polyline needs at least 2 vertices");
  }
  for (size_t i = 1; i < vertices.size(); ++i) {
    if (vertices[i] == vertices[i - 1]) {
      return Status::InvalidArgument("polyline has a zero-length edge at " +
                                     std::to_string(i));
    }
  }
  return Polyline(std::move(vertices));
}

double Polyline::Length() const {
  return cum_length_.empty() ? 0.0 : cum_length_.back();
}

Point Polyline::AtArcLength(double s) const {
  if (vertices_.empty()) {
    return Point();
  }
  if (s <= 0.0) {
    return vertices_.front();
  }
  if (s >= Length()) {
    return vertices_.back();
  }
  auto it = std::lower_bound(cum_length_.begin(), cum_length_.end(), s);
  size_t i = static_cast<size_t>(it - cum_length_.begin());
  // cum_length_[i] >= s and i >= 1 because cum_length_[0] == 0 < s.
  double seg_start = cum_length_[i - 1];
  double seg_len = cum_length_[i] - seg_start;
  double t = seg_len > 0.0 ? (s - seg_start) / seg_len : 0.0;
  return segment(i - 1).At(t);
}

double Polyline::DistanceTo(Point p) const {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < num_segments(); ++i) {
    best = std::min(best, segment(i).DistanceTo(p));
  }
  return best;
}

bool Polyline::Contains(Point p) const {
  for (size_t i = 0; i < num_segments(); ++i) {
    if (OnSegment(p, vertices_[i], vertices_[i + 1])) {
      return true;
    }
  }
  return false;
}

bool Polyline::IntersectsSegment(const Segment& s) const {
  if (!bounds_.Intersects(s.Bounds())) {
    return false;
  }
  for (size_t i = 0; i < num_segments(); ++i) {
    if (SegmentsIntersect(vertices_[i], vertices_[i + 1], s.a, s.b)) {
      return true;
    }
  }
  return false;
}

bool Polyline::Intersects(const Polyline& other) const {
  if (!bounds_.Intersects(other.bounds_)) {
    return false;
  }
  for (size_t i = 0; i < num_segments(); ++i) {
    if (other.IntersectsSegment(segment(i))) {
      return true;
    }
  }
  return false;
}

std::string Polyline::ToString() const {
  std::ostringstream os;
  os << "Polyline[" << vertices_.size() << " pts, len=" << Length() << "]";
  return os.str();
}

}  // namespace piet::geometry
