#ifndef PIET_GEOMETRY_POLYLINE_H_
#define PIET_GEOMETRY_POLYLINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "geometry/box.h"
#include "geometry/segment.h"

namespace piet::geometry {

/// An open polygonal chain of >= 2 vertices. This is the paper's `polyline`
/// geometry (rivers, streets, highways) and also serves as the static
/// spatial rendering of a trajectory (query type 6).
class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<Point> vertices);

  /// Validates that a polyline has >= 2 vertices and no zero-length edge.
  static Result<Polyline> Create(std::vector<Point> vertices);

  const std::vector<Point>& vertices() const { return vertices_; }
  size_t num_vertices() const { return vertices_.size(); }
  size_t num_segments() const {
    return vertices_.size() < 2 ? 0 : vertices_.size() - 1;
  }
  Segment segment(size_t i) const {
    return Segment(vertices_[i], vertices_[i + 1]);
  }

  /// Total arc length.
  double Length() const;

  /// Point at arc-length `s` from the start, clamped to [0, Length()].
  Point AtArcLength(double s) const;

  /// Minimum distance from `p` to the chain.
  double DistanceTo(Point p) const;

  /// True if `p` lies on the chain.
  bool Contains(Point p) const;

  /// True if any edge of this chain intersects segment `s`.
  bool IntersectsSegment(const Segment& s) const;

  /// True if the two chains share at least one point.
  bool Intersects(const Polyline& other) const;

  BoundingBox Bounds() const { return bounds_; }

  std::string ToString() const;

 private:
  std::vector<Point> vertices_;
  // Cumulative arc length; cum_length_[i] = length of prefix up to vertex i.
  std::vector<double> cum_length_;
  BoundingBox bounds_;
};

}  // namespace piet::geometry

#endif  // PIET_GEOMETRY_POLYLINE_H_
