#ifndef PIET_GEOMETRY_POINT_H_
#define PIET_GEOMETRY_POINT_H_

#include <cmath>
#include <string>

namespace piet::geometry {

/// A point (or free vector) in the plane. Coordinates are doubles; the
/// paper's algebraic part assumes rational coordinates, which doubles
/// represent exactly for the dyadic rationals all generators emit.
struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double px, double py) : x(px), y(py) {}

  friend constexpr Point operator+(Point a, Point b) {
    return Point(a.x + b.x, a.y + b.y);
  }
  friend constexpr Point operator-(Point a, Point b) {
    return Point(a.x - b.x, a.y - b.y);
  }
  friend constexpr Point operator*(Point a, double s) {
    return Point(a.x * s, a.y * s);
  }
  friend constexpr Point operator*(double s, Point a) { return a * s; }
  friend constexpr Point operator/(Point a, double s) {
    return Point(a.x / s, a.y / s);
  }
  friend constexpr bool operator==(Point a, Point b) {
    return a.x == b.x && a.y == b.y;
  }
  friend constexpr bool operator!=(Point a, Point b) { return !(a == b); }

  std::string ToString() const;
};

/// Dot product.
constexpr double Dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }

/// 2D cross product (z-component of the 3D cross of embedded vectors).
constexpr double Cross(Point a, Point b) { return a.x * b.y - a.y * b.x; }

/// Squared Euclidean distance.
constexpr double SquaredDistance(Point a, Point b) {
  return Dot(a - b, a - b);
}

/// Euclidean distance.
inline double Distance(Point a, Point b) {
  return std::sqrt(SquaredDistance(a, b));
}

/// Euclidean norm of `a` viewed as a vector.
inline double Norm(Point a) { return std::sqrt(Dot(a, a)); }

/// Lexicographic (x, then y) comparison for sorting and canonicalization.
struct PointLexLess {
  bool operator()(Point a, Point b) const {
    if (a.x != b.x) {
      return a.x < b.x;
    }
    return a.y < b.y;
  }
};

}  // namespace piet::geometry

#endif  // PIET_GEOMETRY_POINT_H_
