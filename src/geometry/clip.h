#ifndef PIET_GEOMETRY_CLIP_H_
#define PIET_GEOMETRY_CLIP_H_

#include <optional>
#include <vector>

#include "geometry/polygon.h"

namespace piet::geometry {

/// Clips a subject ring against a *convex* clip ring using
/// Sutherland–Hodgman. Returns the intersection ring, or nullopt when the
/// intersection is empty or degenerate (area 0).
///
/// This is the exact kernel used by the convex Piet overlay (Sec. 5 of the
/// paper): overlay cells are built by iterated clipping of convex layer
/// polygons against each other.
std::optional<Ring> ClipRingToConvex(const Ring& subject,
                                     const Ring& convex_clip);

/// Intersection of two convex polygons (no holes). Returns nullopt when the
/// overlap has zero area.
std::optional<Polygon> ConvexIntersection(const Polygon& a, const Polygon& b);

/// Area of the intersection of two convex polygons (0 when disjoint).
double ConvexIntersectionArea(const Polygon& a, const Polygon& b);

/// Andrew's monotone-chain convex hull. Returns the hull vertices in CCW
/// order; collinear interior points are removed. Requires >= 3 input points
/// not all collinear to form a Ring; otherwise returns nullopt.
std::optional<Ring> ConvexHull(std::vector<Point> points);

}  // namespace piet::geometry

#endif  // PIET_GEOMETRY_CLIP_H_
