#ifndef PIET_GEOMETRY_BOX_H_
#define PIET_GEOMETRY_BOX_H_

#include <algorithm>
#include <limits>
#include <string>

#include "geometry/point.h"

namespace piet::geometry {

/// An axis-aligned bounding box. Default-constructed boxes are *empty*
/// (inverted bounds) and behave as the identity for ExtendWith/Union.
struct BoundingBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  constexpr BoundingBox() = default;
  constexpr BoundingBox(double x0, double y0, double x1, double y1)
      : min_x(x0), min_y(y0), max_x(x1), max_y(y1) {}

  static BoundingBox FromPoints(Point a, Point b) {
    return BoundingBox(std::min(a.x, b.x), std::min(a.y, b.y),
                       std::max(a.x, b.x), std::max(a.y, b.y));
  }

  bool empty() const { return min_x > max_x || min_y > max_y; }

  double width() const { return empty() ? 0.0 : max_x - min_x; }
  double height() const { return empty() ? 0.0 : max_y - min_y; }
  double Area() const { return width() * height(); }
  /// Half-perimeter; the classic R-tree "margin" metric.
  double Margin() const { return width() + height(); }

  Point Center() const {
    return Point((min_x + max_x) / 2.0, (min_y + max_y) / 2.0);
  }

  void ExtendWith(Point p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  void ExtendWith(const BoundingBox& other) {
    min_x = std::min(min_x, other.min_x);
    min_y = std::min(min_y, other.min_y);
    max_x = std::max(max_x, other.max_x);
    max_y = std::max(max_y, other.max_y);
  }

  bool Contains(Point p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Contains(const BoundingBox& other) const {
    return !other.empty() && other.min_x >= min_x && other.max_x <= max_x &&
           other.min_y >= min_y && other.max_y <= max_y;
  }

  bool Intersects(const BoundingBox& other) const {
    return !empty() && !other.empty() && min_x <= other.max_x &&
           other.min_x <= max_x && min_y <= other.max_y &&
           other.min_y <= max_y;
  }

  /// The (possibly empty) intersection box.
  BoundingBox Intersection(const BoundingBox& other) const {
    BoundingBox out(std::max(min_x, other.min_x), std::max(min_y, other.min_y),
                    std::min(max_x, other.max_x),
                    std::min(max_y, other.max_y));
    return out;
  }

  BoundingBox Union(const BoundingBox& other) const {
    BoundingBox out = *this;
    out.ExtendWith(other);
    return out;
  }

  /// Area growth if `other` were merged into this box.
  double Enlargement(const BoundingBox& other) const {
    return Union(other).Area() - Area();
  }

  /// Minimum squared distance from `p` to the box (0 when inside).
  double SquaredDistanceTo(Point p) const {
    double dx = std::max({min_x - p.x, 0.0, p.x - max_x});
    double dy = std::max({min_y - p.y, 0.0, p.y - max_y});
    return dx * dx + dy * dy;
  }

  std::string ToString() const;

  friend bool operator==(const BoundingBox& a, const BoundingBox& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

}  // namespace piet::geometry

#endif  // PIET_GEOMETRY_BOX_H_
