#ifndef PIET_GEOMETRY_POLYGON_H_
#define PIET_GEOMETRY_POLYGON_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "geometry/box.h"
#include "geometry/segment.h"

namespace piet::geometry {

/// Where a point lies relative to a closed region.
enum class PointLocation {
  kOutside = 0,
  kBoundary,
  kInside,
};

/// A simple closed ring of >= 3 vertices, stored without the repeated
/// closing vertex. Orientation is normalized to counter-clockwise by
/// Create(); raw construction keeps the given order.
class Ring {
 public:
  Ring() = default;
  explicit Ring(std::vector<Point> vertices);

  /// Validates (>= 3 vertices, nonzero area, no duplicate consecutive
  /// vertices) and normalizes orientation to CCW.
  static Result<Ring> Create(std::vector<Point> vertices);

  const std::vector<Point>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }
  Segment edge(size_t i) const {
    return Segment(vertices_[i], vertices_[(i + 1) % vertices_.size()]);
  }

  /// Signed area: positive for CCW rings (shoelace formula).
  double SignedArea() const;
  double Area() const;
  double Perimeter() const;
  Point Centroid() const;
  bool IsCounterClockwise() const { return SignedArea() > 0.0; }
  /// True if every interior angle turns the same way (no reflex vertex).
  bool IsConvex() const;
  /// True if no two non-adjacent edges intersect.
  bool IsSimple() const;

  /// Even-odd crossing test with explicit boundary detection.
  PointLocation Locate(Point p) const;

  void Reverse();

  BoundingBox Bounds() const { return bounds_; }

  std::string ToString() const;

 private:
  std::vector<Point> vertices_;
  BoundingBox bounds_;
};

/// A polygon: one outer ring (CCW) plus zero or more hole rings (the paper's
/// `region` geometry admits holes). Holes must be disjoint and inside the
/// shell; Create() checks containment of hole centroids only (cheap sanity).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(Ring shell, std::vector<Ring> holes = {});

  static Result<Polygon> Create(Ring shell, std::vector<Ring> holes = {});

  const Ring& shell() const { return shell_; }
  const std::vector<Ring>& holes() const { return holes_; }

  double Area() const;
  double Perimeter() const;
  Point Centroid() const;
  BoundingBox Bounds() const { return shell_.Bounds(); }
  bool IsConvex() const { return holes_.empty() && shell_.IsConvex(); }

  /// Interior / boundary / exterior location of `p`, holes respected.
  PointLocation Locate(Point p) const;

  /// True if `p` is inside or on the boundary. Matches the paper's closed
  /// regions: a sampled position on a neighborhood border counts as in it
  /// (a point may belong to two adjacent polygons).
  bool Contains(Point p) const { return Locate(p) != PointLocation::kOutside; }

  /// True if `p` is strictly interior.
  bool ContainsInterior(Point p) const {
    return Locate(p) == PointLocation::kInside;
  }

  /// True if the closed polygon and the closed segment share a point.
  bool IntersectsSegment(const Segment& s) const;

  /// True if the two closed polygons share a point (boundary touch counts).
  bool Intersects(const Polygon& other) const;

  /// True if `other` is entirely within this polygon (boundary allowed).
  bool ContainsPolygon(const Polygon& other) const;

  std::string ToString() const;

 private:
  Ring shell_;
  std::vector<Ring> holes_;
};

/// Builds an axis-aligned rectangle polygon.
Polygon MakeRectangle(double x0, double y0, double x1, double y1);

/// Builds a regular n-gon centered at `center`.
Polygon MakeRegularPolygon(Point center, double radius, int sides,
                           double phase = 0.0);

}  // namespace piet::geometry

#endif  // PIET_GEOMETRY_POLYGON_H_
