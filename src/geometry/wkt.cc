#include "geometry/wkt.h"

#include <cctype>
#include <charconv>
#include <sstream>

#include "common/string_util.h"

namespace piet::geometry {

namespace {

void AppendCoord(std::ostringstream* os, Point p) {
  (*os) << p.x << " " << p.y;
}

void AppendRing(std::ostringstream* os, const Ring& ring) {
  (*os) << "(";
  const auto& v = ring.vertices();
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) {
      (*os) << ", ";
    }
    AppendCoord(os, v[i]);
  }
  // WKT rings repeat the first vertex.
  (*os) << ", ";
  AppendCoord(os, v.front());
  (*os) << ")";
}

/// Minimal recursive-descent WKT scanner.
class WktScanner {
 public:
  explicit WktScanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeTag(std::string_view tag) {
    SkipSpace();
    if (pos_ + tag.size() > text_.size()) {
      return false;
    }
    if (!EqualsIgnoreCase(text_.substr(pos_, tag.size()), tag)) {
      return false;
    }
    pos_ += tag.size();
    return true;
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<double> ParseNumber() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) {
      return Status::ParseError("expected number at offset " +
                                std::to_string(start));
    }
    double value = 0.0;
    auto res = std::from_chars(text_.data() + start, text_.data() + pos_,
                               value);
    if (res.ec != std::errc()) {
      return Status::ParseError("bad number in WKT");
    }
    return value;
  }

  Result<Point> ParseCoord() {
    PIET_ASSIGN_OR_RETURN(double x, ParseNumber());
    PIET_ASSIGN_OR_RETURN(double y, ParseNumber());
    return Point(x, y);
  }

  Result<std::vector<Point>> ParseCoordList() {
    if (!ConsumeChar('(')) {
      return Status::ParseError("expected '(' in WKT");
    }
    std::vector<Point> pts;
    while (true) {
      PIET_ASSIGN_OR_RETURN(Point p, ParseCoord());
      pts.push_back(p);
      if (ConsumeChar(',')) {
        continue;
      }
      if (ConsumeChar(')')) {
        break;
      }
      return Status::ParseError("expected ',' or ')' in WKT coordinate list");
    }
    return pts;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string ToWkt(Point p) {
  std::ostringstream os;
  os << "POINT (";
  AppendCoord(&os, p);
  os << ")";
  return os.str();
}

std::string ToWkt(const Polyline& line) {
  std::ostringstream os;
  os << "LINESTRING (";
  const auto& v = line.vertices();
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    AppendCoord(&os, v[i]);
  }
  os << ")";
  return os.str();
}

std::string ToWkt(const Polygon& polygon) {
  std::ostringstream os;
  os << "POLYGON (";
  AppendRing(&os, polygon.shell());
  for (const Ring& hole : polygon.holes()) {
    os << ", ";
    AppendRing(&os, hole);
  }
  os << ")";
  return os.str();
}

Result<Point> PointFromWkt(std::string_view wkt) {
  WktScanner scan(wkt);
  if (!scan.ConsumeTag("POINT")) {
    return Status::ParseError("expected POINT tag");
  }
  if (!scan.ConsumeChar('(')) {
    return Status::ParseError("expected '(' after POINT");
  }
  PIET_ASSIGN_OR_RETURN(Point p, scan.ParseCoord());
  if (!scan.ConsumeChar(')') || !scan.AtEnd()) {
    return Status::ParseError("trailing content after POINT");
  }
  return p;
}

Result<Polyline> PolylineFromWkt(std::string_view wkt) {
  WktScanner scan(wkt);
  if (!scan.ConsumeTag("LINESTRING")) {
    return Status::ParseError("expected LINESTRING tag");
  }
  PIET_ASSIGN_OR_RETURN(std::vector<Point> pts, scan.ParseCoordList());
  if (!scan.AtEnd()) {
    return Status::ParseError("trailing content after LINESTRING");
  }
  return Polyline::Create(std::move(pts));
}

Result<Polygon> PolygonFromWkt(std::string_view wkt) {
  WktScanner scan(wkt);
  if (!scan.ConsumeTag("POLYGON")) {
    return Status::ParseError("expected POLYGON tag");
  }
  if (!scan.ConsumeChar('(')) {
    return Status::ParseError("expected '(' after POLYGON");
  }
  PIET_ASSIGN_OR_RETURN(std::vector<Point> shell_pts, scan.ParseCoordList());
  PIET_ASSIGN_OR_RETURN(Ring shell, Ring::Create(std::move(shell_pts)));
  std::vector<Ring> holes;
  while (scan.ConsumeChar(',')) {
    PIET_ASSIGN_OR_RETURN(std::vector<Point> hole_pts, scan.ParseCoordList());
    PIET_ASSIGN_OR_RETURN(Ring hole, Ring::Create(std::move(hole_pts)));
    holes.push_back(std::move(hole));
  }
  if (!scan.ConsumeChar(')') || !scan.AtEnd()) {
    return Status::ParseError("trailing content after POLYGON");
  }
  return Polygon::Create(std::move(shell), std::move(holes));
}

}  // namespace piet::geometry
