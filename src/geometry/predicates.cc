#include "geometry/predicates.h"

#include <algorithm>
#include <cmath>

namespace piet::geometry {

namespace {

// Error-bound coefficient for the 2x2 determinant computed in doubles,
// following the structure of Shewchuk's orient2d filter.
constexpr double kOrientErrorBound = 3.330669073875469697e-16;  // (3+16eps)eps

int SignOf(long double v) {
  if (v > 0) {
    return 1;
  }
  if (v < 0) {
    return -1;
  }
  return 0;
}

}  // namespace

int Orientation(Point a, Point b, Point c) {
  double detleft = (a.x - c.x) * (b.y - c.y);
  double detright = (a.y - c.y) * (b.x - c.x);
  double det = detleft - detright;

  double detsum;
  if (detleft > 0) {
    if (detright <= 0) {
      return det > 0 ? 1 : (det < 0 ? -1 : 0);
    }
    detsum = detleft + detright;
  } else if (detleft < 0) {
    if (detright >= 0) {
      return det > 0 ? 1 : (det < 0 ? -1 : 0);
    }
    detsum = -detleft - detright;
  } else {
    return det > 0 ? 1 : (det < 0 ? -1 : 0);
  }

  double errbound = kOrientErrorBound * detsum;
  if (det >= errbound || -det >= errbound) {
    return det > 0 ? 1 : -1;
  }

  // Near-degenerate: re-evaluate in long double (64-bit mantissa on x86),
  // which is exact for the coordinate magnitudes our generators produce.
  long double lx = (static_cast<long double>(a.x) - c.x) *
                   (static_cast<long double>(b.y) - c.y);
  long double ly = (static_cast<long double>(a.y) - c.y) *
                   (static_cast<long double>(b.x) - c.x);
  return SignOf(lx - ly);
}

bool OnSegment(Point p, Point a, Point b) {
  if (Orientation(a, b, p) != 0) {
    return false;
  }
  return p.x >= std::min(a.x, b.x) && p.x <= std::max(a.x, b.x) &&
         p.y >= std::min(a.y, b.y) && p.y <= std::max(a.y, b.y);
}

namespace {

// For collinear segments, projects onto the dominant axis and returns the
// overlapping closed interval as a pair of points, if any.
std::optional<std::pair<Point, Point>> CollinearOverlap(Point a0, Point a1,
                                                        Point b0, Point b1) {
  auto key = [&](Point p) {
    // Project onto the dominant extent of segment a (fallback: x).
    double dx = std::abs(a1.x - a0.x);
    double dy = std::abs(a1.y - a0.y);
    return (dx >= dy) ? p.x : p.y;
  };
  Point lo_a = a0, hi_a = a1, lo_b = b0, hi_b = b1;
  if (key(lo_a) > key(hi_a)) {
    std::swap(lo_a, hi_a);
  }
  if (key(lo_b) > key(hi_b)) {
    std::swap(lo_b, hi_b);
  }
  Point lo = (key(lo_a) >= key(lo_b)) ? lo_a : lo_b;
  Point hi = (key(hi_a) <= key(hi_b)) ? hi_a : hi_b;
  if (key(lo) > key(hi)) {
    return std::nullopt;
  }
  return std::make_pair(lo, hi);
}

}  // namespace

SegmentIntersection IntersectSegments(Point a0, Point a1, Point b0, Point b1) {
  SegmentIntersection out;
  int o1 = Orientation(a0, a1, b0);
  int o2 = Orientation(a0, a1, b1);
  int o3 = Orientation(b0, b1, a0);
  int o4 = Orientation(b0, b1, a1);

  if (o1 != o2 && o3 != o4) {
    // Proper crossing: solve for the intersection parameter on segment a.
    Point r = a1 - a0;
    Point s = b1 - b0;
    double denom = Cross(r, s);
    // o-sign disagreement guarantees denom != 0 up to rounding; guard anyway.
    if (denom != 0.0) {
      double t = Cross(b0 - a0, s) / denom;
      t = std::clamp(t, 0.0, 1.0);
      out.kind = SegmentIntersectionKind::kPoint;
      out.p0 = a0 + r * t;
      out.p1 = out.p0;
      return out;
    }
  }

  if (o1 == 0 && o2 == 0 && o3 == 0 && o4 == 0) {
    // Degenerate (point) segments: containment tests, not interval math.
    if (a0 == a1 || b0 == b1) {
      Point p = (a0 == a1) ? a0 : b0;
      bool hit = (a0 == a1) ? OnSegment(a0, b0, b1) : OnSegment(b0, a0, a1);
      if (hit) {
        out.kind = SegmentIntersectionKind::kPoint;
        out.p0 = out.p1 = p;
      }
      return out;
    }
    // All collinear; intersect the 1D intervals.
    auto overlap = CollinearOverlap(a0, a1, b0, b1);
    if (!overlap) {
      return out;
    }
    if (overlap->first == overlap->second) {
      out.kind = SegmentIntersectionKind::kPoint;
      out.p0 = overlap->first;
      out.p1 = overlap->first;
    } else {
      out.kind = SegmentIntersectionKind::kOverlap;
      out.p0 = overlap->first;
      out.p1 = overlap->second;
    }
    return out;
  }

  // Endpoint-touching cases.
  if (o1 == 0 && OnSegment(b0, a0, a1)) {
    out.kind = SegmentIntersectionKind::kPoint;
    out.p0 = out.p1 = b0;
    return out;
  }
  if (o2 == 0 && OnSegment(b1, a0, a1)) {
    out.kind = SegmentIntersectionKind::kPoint;
    out.p0 = out.p1 = b1;
    return out;
  }
  if (o3 == 0 && OnSegment(a0, b0, b1)) {
    out.kind = SegmentIntersectionKind::kPoint;
    out.p0 = out.p1 = a0;
    return out;
  }
  if (o4 == 0 && OnSegment(a1, b0, b1)) {
    out.kind = SegmentIntersectionKind::kPoint;
    out.p0 = out.p1 = a1;
    return out;
  }
  return out;
}

bool SegmentsIntersect(Point a0, Point a1, Point b0, Point b1) {
  return IntersectSegments(a0, a1, b0, b1).kind !=
         SegmentIntersectionKind::kNone;
}

}  // namespace piet::geometry
