#include "geometry/point.h"

#include <sstream>

namespace piet::geometry {

std::string Point::ToString() const {
  std::ostringstream os;
  os << "(" << x << ", " << y << ")";
  return os.str();
}

}  // namespace piet::geometry
