#ifndef PIET_WORKLOAD_TRAJECTORIES_H_
#define PIET_WORKLOAD_TRAJECTORIES_H_

#include "common/random.h"
#include "common/result.h"
#include "moving/moft.h"
#include "workload/city.h"

namespace piet::workload {

/// Movement models for the synthetic trajectory generator.
enum class MovementModel {
  /// Straight legs toward uniformly random waypoints.
  kRandomWaypoint = 0,
  /// Movement snapped to the street grid (Manhattan-style walks).
  kStreetNetwork,
  /// Home -> work in the morning, work -> home in the evening, idle
  /// otherwise; homes biased toward low-income cells, work toward high.
  kCommuter,
};

/// Parameters for trajectory generation. Time runs from `start` for
/// `duration` seconds; positions are observed every `sample_period` seconds
/// with optional GPS-style jitter — exactly the finite-sample regime the
/// paper's MOFT models.
struct TrajectoryConfig {
  uint64_t seed = 7;
  int num_objects = 100;
  temporal::TimePoint start;        ///< Defaults to epoch (2000-01-01).
  double duration = 4.0 * 3600.0;   ///< Seconds of simulated movement.
  double sample_period = 60.0;      ///< Seconds between observations.
  double speed = 10.0;              ///< Units per second.
  double jitter = 0.0;              ///< Uniform observation noise amplitude.
  MovementModel model = MovementModel::kRandomWaypoint;
};

/// Generates a MOFT of sampled trajectories over the city.
Result<moving::Moft> GenerateTrajectories(const City& city,
                                          const TrajectoryConfig& config);

}  // namespace piet::workload

#endif  // PIET_WORKLOAD_TRAJECTORIES_H_
