#include "workload/scenario.h"

#include <vector>

#include "temporal/calendar.h"

namespace piet::workload {

using geometry::MakeRectangle;
using geometry::Point;
using geometry::Polyline;
using gis::GeometryGraph;
using gis::GeometryId;
using gis::GeometryKind;
using gis::GisDimensionInstance;
using gis::GisDimensionSchema;
using gis::Layer;
using moving::ObjectId;
using temporal::TimePoint;

gis::GisDimensionSchema BuildFigure2Schema() {
  GisDimensionSchema schema;
  (void)schema.AddLayerGraph("Ln", GeometryGraph::PolygonLayerGraph());
  (void)schema.AddLayerGraph("Lr", GeometryGraph::PolylineLayerGraph());
  (void)schema.AddLayerGraph("Ls", GeometryGraph::NodeLayerGraph());
  (void)schema.AddLayerGraph("Lst", GeometryGraph::PolylineLayerGraph());

  // Att bindings of Example 2: neighborhood -> (polygon, Ln),
  // river -> (polyline, Lr), school -> (node, Ls), street -> (polyline, Lst).
  (void)schema.AddAttribute("neighborhood", GeometryKind::kPolygon, "Ln");
  (void)schema.AddAttribute("river", GeometryKind::kPolyline, "Lr");
  (void)schema.AddAttribute("school", GeometryKind::kNode, "Ls");
  (void)schema.AddAttribute("street", GeometryKind::kPolyline, "Lst");

  // Application dimensions: Neighbourhoods (neighborhood -> city -> All)
  // and Rivers (river -> All).
  olap::DimensionSchema neighbourhoods("Neighbourhoods", "neighborhood");
  (void)neighbourhoods.AddEdge("neighborhood", "city");
  (void)neighbourhoods.AddEdge("city", olap::DimensionSchema::kAll);
  (void)schema.AddApplicationDimension(std::move(neighbourhoods));

  olap::DimensionSchema rivers("Rivers", "river");
  (void)rivers.AddEdge("river", olap::DimensionSchema::kAll);
  (void)schema.AddApplicationDimension(std::move(rivers));

  return schema;
}

namespace {

// Instant of hour `h` (0-23) on day `day_offset` days after the base
// Monday 2006-01-02.
Result<TimePoint> HourOn(int day_offset, double h) {
  temporal::CivilTime base;
  base.year = 2006;
  base.month = 1;
  base.day = 2;  // A Monday.
  PIET_ASSIGN_OR_RETURN(TimePoint day0, temporal::FromCivil(base));
  return TimePoint(day0.seconds + day_offset * temporal::kDay +
                   h * temporal::kHour);
}

// Sample time mapping of Table 1: t = 1..6 maps to hours 5..10, so t=1 is
// night and t=2..6 are morning — giving Remark 1's three qualifying hours.
Result<TimePoint> TableTime(int day_offset, int t) {
  return HourOn(day_offset, 4.0 + t);
}

}  // namespace

Result<Figure1Scenario> BuildFigure1Scenario(int replication) {
  if (replication < 1) {
    return Status::InvalidArgument("replication must be >= 1");
  }
  Figure1Scenario scenario;

  GisDimensionSchema schema = BuildFigure2Schema();
  GisDimensionInstance gis(std::move(schema));

  // --- Neighborhood layer Ln: a 3x2 grid partition of [0,120]x[0,80]. ---
  // N1 = [40,80]x[0,40] is the shaded low-income region of Figure 1.
  auto ln = std::make_shared<Layer>("Ln", GeometryKind::kPolygon);
  struct Cell {
    double x0, y0, x1, y1;
    double income;
    const char* name;
  };
  const Cell kCells[] = {
      {0, 0, 40, 40, 2200, "N0"},    {40, 0, 80, 40, 1200, "N1"},
      {80, 0, 120, 40, 2500, "N2"},  {0, 40, 40, 80, 1900, "N3"},
      {40, 40, 80, 80, 2100, "N4"},  {80, 40, 120, 80, 2700, "N5"},
  };
  std::vector<GeometryId> cell_ids;
  for (const Cell& c : kCells) {
    PIET_ASSIGN_OR_RETURN(
        GeometryId id, ln->AddPolygon(MakeRectangle(c.x0, c.y0, c.x1, c.y1)));
    PIET_RETURN_NOT_OK(ln->SetAttribute(id, "income", Value(c.income)));
    PIET_RETURN_NOT_OK(ln->SetAttribute(id, "name", Value(c.name)));
    PIET_RETURN_NOT_OK(
        ln->SetAttribute(id, "population", Value(30000.0 + 10000.0 * id)));
    cell_ids.push_back(id);
  }
  scenario.low_income_neighborhood = cell_ids[1];

  // --- River layer Lr: a polyline dividing north (y>40) from south. ---
  auto lr = std::make_shared<Layer>("Lr", GeometryKind::kPolyline);
  PIET_ASSIGN_OR_RETURN(
      GeometryId river_id,
      lr->AddPolyline(Polyline({Point(0, 40), Point(60, 41), Point(120, 40)})));
  PIET_RETURN_NOT_OK(lr->SetAttribute(river_id, "name", Value("Scheldt")));

  // --- School layer Ls: three schools. ---
  auto ls = std::make_shared<Layer>("Ls", GeometryKind::kNode);
  PIET_ASSIGN_OR_RETURN(GeometryId school0, ls->AddPoint(Point(20, 20)));
  PIET_ASSIGN_OR_RETURN(GeometryId school1, ls->AddPoint(Point(70, 25)));
  PIET_ASSIGN_OR_RETURN(GeometryId school2, ls->AddPoint(Point(100, 60)));
  (void)school1;
  (void)school2;

  // --- Street layer Lst: two horizontal + two vertical streets. ---
  auto lst = std::make_shared<Layer>("Lst", GeometryKind::kPolyline);
  PIET_ASSIGN_OR_RETURN(
      GeometryId street0,
      lst->AddPolyline(Polyline({Point(0, 20), Point(120, 20)})));
  PIET_ASSIGN_OR_RETURN(
      GeometryId street1,
      lst->AddPolyline(Polyline({Point(0, 60), Point(120, 60)})));
  PIET_ASSIGN_OR_RETURN(
      GeometryId street2,
      lst->AddPolyline(Polyline({Point(20, 0), Point(20, 80)})));
  PIET_ASSIGN_OR_RETURN(
      GeometryId street3,
      lst->AddPolyline(Polyline({Point(100, 0), Point(100, 80)})));
  (void)street1;
  (void)street2;
  (void)street3;
  (void)street0;

  PIET_RETURN_NOT_OK(gis.AddLayer(ln));
  PIET_RETURN_NOT_OK(gis.AddLayer(lr));
  PIET_RETURN_NOT_OK(gis.AddLayer(ls));
  PIET_RETURN_NOT_OK(gis.AddLayer(lst));

  // α bindings: neighborhood members -> polygons; river member; schools.
  for (size_t i = 0; i < cell_ids.size(); ++i) {
    PIET_RETURN_NOT_OK(
        gis.BindAlpha("neighborhood", Value(kCells[i].name), cell_ids[i]));
  }
  PIET_RETURN_NOT_OK(gis.BindAlpha("river", Value("Scheldt"), river_id));
  PIET_RETURN_NOT_OK(gis.BindAlpha("school", Value("S0"), school0));

  // Application dimension instance: neighborhoods roll up to "Antwerp".
  {
    PIET_ASSIGN_OR_RETURN(
        const olap::DimensionSchema* nb_schema,
        gis.schema().ApplicationDimension("Neighbourhoods"));
    olap::DimensionInstance nb(*nb_schema);
    for (const Cell& c : kCells) {
      PIET_RETURN_NOT_OK(
          nb.AddRollup("neighborhood", Value(c.name), "city",
                       Value("Antwerp")));
    }
    PIET_RETURN_NOT_OK(gis.AddApplicationInstance(std::move(nb)));
  }

  scenario.db = std::make_unique<core::GeoOlapDatabase>(std::move(gis));

  // --- The MOFT FMbus (Table 1), replicated across days. ---
  moving::Moft moft;
  struct Obs {
    int bus;  // 1..6
    int t;    // Table 1 sample index.
    double x, y;
  };
  // Positions realize the Figure 1 topology on the grid above.
  const Obs kTable1[] = {
      {1, 1, 50, 10}, {1, 2, 60, 15}, {1, 3, 70, 20}, {1, 4, 50, 30},
      {2, 2, 20, 20}, {2, 3, 60, 20}, {2, 4, 100, 20},
      {3, 5, 20, 60},
      {4, 6, 100, 60},
      {5, 3, 60, 60},
      {6, 2, 30, 50}, {6, 3, 90, 30},
  };
  for (int day = 0; day < replication; ++day) {
    for (const Obs& obs : kTable1) {
      ObjectId oid = static_cast<ObjectId>(day * 6 + obs.bus);
      PIET_ASSIGN_OR_RETURN(TimePoint t, TableTime(day, obs.t));
      PIET_RETURN_NOT_OK(moft.Add(oid, t, Point(obs.x, obs.y)));
    }
  }
  PIET_RETURN_NOT_OK(scenario.db->AddMoft(scenario.moft_name, std::move(moft)));

  return scenario;
}

}  // namespace piet::workload
