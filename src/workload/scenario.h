#ifndef PIET_WORKLOAD_SCENARIO_H_
#define PIET_WORKLOAD_SCENARIO_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/database.h"

namespace piet::workload {

/// The paper's running example, reconstructed exactly:
///  * Figure 2's GIS dimension schema — layers Ln (neighborhoods, polygon),
///    Lr (rivers, polyline), Ls (schools, node), application dimensions
///    Neighbourhoods (neighborhood -> city) and Rivers (river -> All);
///  * Figure 1's geometry — six neighborhoods partitioning the city, one
///    low-income (< 1500), a river, schools;
///  * Table 1's MOFT `FMbus` — six buses O1..O6 with the exact topology
///    discussed in the paper: O1 always inside the low-income region, O2
///    in-out-in, O3/O4/O5 never inside, O6 crossing it between samples.
///
/// On this instance the headline query (Remark 1) — "number of buses per
/// hour in the morning in the neighborhoods with income < 1500" — must
/// return exactly 4/3.
struct Figure1Scenario {
  std::unique_ptr<core::GeoOlapDatabase> db;

  std::string moft_name = "FMbus";
  std::string neighborhoods_layer = "Ln";
  std::string rivers_layer = "Lr";
  std::string schools_layer = "Ls";
  std::string streets_layer = "Lst";

  /// The income threshold of the headline query.
  double income_threshold = 1500.0;

  /// Geometry id of the low-income neighborhood.
  gis::GeometryId low_income_neighborhood = 0;

  /// Object ids of the six buses.
  moving::ObjectId o1 = 1, o2 = 2, o3 = 3, o4 = 4, o5 = 5, o6 = 6;
};

/// Builds the Figure 1 instance. `replication` >= 1 scales the workload for
/// benchmarking by cloning the six-bus day pattern onto `replication`
/// consecutive days with fresh object ids — the Remark 1 answer stays
/// exactly 4/3 at every scale (each clone contributes the same 4 tuples
/// over the same 3 morning hours of its own day).
Result<Figure1Scenario> BuildFigure1Scenario(int replication = 1);

/// Builds just the Figure 2 GIS dimension schema (for structural tests).
gis::GisDimensionSchema BuildFigure2Schema();

}  // namespace piet::workload

#endif  // PIET_WORKLOAD_SCENARIO_H_
