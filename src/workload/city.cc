#include "workload/city.h"

#include <vector>

#include "gis/schema.h"

namespace piet::workload {

using geometry::MakeRectangle;
using geometry::Point;
using geometry::Polygon;
using geometry::Polyline;
using geometry::Ring;
using gis::GeometryGraph;
using gis::GeometryId;
using gis::GeometryKind;
using gis::GisDimensionInstance;
using gis::GisDimensionSchema;
using gis::Layer;

namespace {

// An L-shaped hexagonal ring occupying a 2x2 block minus its top-right
// quadrant; tiles the block together with that quadrant square.
Ring MakeLShape(double x0, double y0, double s) {
  return Ring({Point(x0, y0), Point(x0 + 2 * s, y0), Point(x0 + 2 * s, y0 + s),
               Point(x0 + s, y0 + s), Point(x0 + s, y0 + 2 * s),
               Point(x0, y0 + 2 * s)});
}

}  // namespace

Result<City> GenerateCity(const CityConfig& config) {
  if (config.grid_cols < 1 || config.grid_rows < 1) {
    return Status::InvalidArgument("grid must be at least 1x1");
  }
  if (config.streets_per_axis < 2) {
    return Status::InvalidArgument("need at least 2 streets per axis");
  }
  Random rng(config.seed);
  City city;

  double width = config.grid_cols * config.cell_size;
  double height = config.grid_rows * config.cell_size;
  city.extent = geometry::BoundingBox(0, 0, width, height);

  GisDimensionSchema schema;
  PIET_RETURN_NOT_OK(schema.AddLayerGraph(city.neighborhoods_layer,
                                          GeometryGraph::PolygonLayerGraph()));
  PIET_RETURN_NOT_OK(schema.AddLayerGraph(city.streets_layer,
                                          GeometryGraph::PolylineLayerGraph()));
  PIET_RETURN_NOT_OK(
      schema.AddLayerGraph(city.schools_layer, GeometryGraph::NodeLayerGraph()));
  PIET_RETURN_NOT_OK(
      schema.AddLayerGraph(city.stores_layer, GeometryGraph::NodeLayerGraph()));
  PIET_RETURN_NOT_OK(
      schema.AddLayerGraph(city.stops_layer, GeometryGraph::NodeLayerGraph()));
  PIET_RETURN_NOT_OK(schema.AddLayerGraph(city.rivers_layer,
                                          GeometryGraph::PolylineLayerGraph()));

  PIET_RETURN_NOT_OK(schema.AddAttribute("neighborhood", GeometryKind::kPolygon,
                                         city.neighborhoods_layer));
  PIET_RETURN_NOT_OK(schema.AddAttribute("street", GeometryKind::kPolyline,
                                         city.streets_layer));
  PIET_RETURN_NOT_OK(schema.AddAttribute("school", GeometryKind::kNode,
                                         city.schools_layer));
  PIET_RETURN_NOT_OK(
      schema.AddAttribute("store", GeometryKind::kNode, city.stores_layer));
  PIET_RETURN_NOT_OK(
      schema.AddAttribute("stop", GeometryKind::kNode, city.stops_layer));
  PIET_RETURN_NOT_OK(schema.AddAttribute("river", GeometryKind::kPolyline,
                                         city.rivers_layer));

  olap::DimensionSchema nb_dim("Neighbourhoods", "neighborhood");
  PIET_RETURN_NOT_OK(nb_dim.AddEdge("neighborhood", "city"));
  PIET_RETURN_NOT_OK(nb_dim.AddEdge("city", olap::DimensionSchema::kAll));
  PIET_RETURN_NOT_OK(schema.AddApplicationDimension(std::move(nb_dim)));

  GisDimensionInstance gis(std::move(schema));

  // --- Neighborhoods: grid partition, optionally with L-shaped blocks. ---
  auto neighborhoods =
      std::make_shared<Layer>(city.neighborhoods_layer, GeometryKind::kPolygon);
  double s = config.cell_size;

  // Mark 2x2 blocks to make non-convex.
  std::vector<std::vector<bool>> consumed(
      static_cast<size_t>(config.grid_rows),
      std::vector<bool>(static_cast<size_t>(config.grid_cols), false));
  struct PolySpec {
    Polygon polygon;
  };
  std::vector<Polygon> polys;
  for (int r = 0; r + 1 < config.grid_rows; r += 2) {
    for (int c = 0; c + 1 < config.grid_cols; c += 2) {
      if (rng.Bernoulli(config.nonconvex_fraction)) {
        double x0 = c * s;
        double y0 = r * s;
        polys.emplace_back(MakeLShape(x0, y0, s));
        polys.emplace_back(MakeRectangle(x0 + s, y0 + s, x0 + 2 * s,
                                         y0 + 2 * s));
        consumed[r][c] = consumed[r][c + 1] = true;
        consumed[r + 1][c] = consumed[r + 1][c + 1] = true;
      }
    }
  }
  for (int r = 0; r < config.grid_rows; ++r) {
    for (int c = 0; c < config.grid_cols; ++c) {
      if (consumed[r][c]) {
        continue;
      }
      polys.emplace_back(MakeRectangle(c * s, r * s, (c + 1) * s, (r + 1) * s));
    }
  }

  std::vector<GeometryId> nb_ids;
  for (size_t i = 0; i < polys.size(); ++i) {
    PIET_ASSIGN_OR_RETURN(GeometryId id,
                          neighborhoods->AddPolygon(std::move(polys[i])));
    bool low = rng.Bernoulli(config.low_income_fraction);
    double income = low ? rng.UniformDouble(800, 1450)
                        : rng.UniformDouble(1600, 4000);
    PIET_RETURN_NOT_OK(neighborhoods->SetAttribute(id, "income", Value(income)));
    PIET_RETURN_NOT_OK(neighborhoods->SetAttribute(
        id, "population", Value(rng.UniformDouble(5000, 80000))));
    PIET_RETURN_NOT_OK(neighborhoods->SetAttribute(
        id, "name", Value("N" + std::to_string(id))));
    nb_ids.push_back(id);
  }
  city.num_neighborhoods = static_cast<int>(nb_ids.size());

  // --- Streets: evenly spaced horizontal and vertical polylines. ---
  auto streets =
      std::make_shared<Layer>(city.streets_layer, GeometryKind::kPolyline);
  for (int i = 0; i < config.streets_per_axis; ++i) {
    double y = height * (i + 0.5) / config.streets_per_axis;
    PIET_ASSIGN_OR_RETURN(
        GeometryId id,
        streets->AddPolyline(Polyline({Point(0, y), Point(width, y)})));
    PIET_RETURN_NOT_OK(
        streets->SetAttribute(id, "name", Value("H" + std::to_string(i))));
  }
  for (int i = 0; i < config.streets_per_axis; ++i) {
    double x = width * (i + 0.5) / config.streets_per_axis;
    PIET_ASSIGN_OR_RETURN(
        GeometryId id,
        streets->AddPolyline(Polyline({Point(x, 0), Point(x, height)})));
    PIET_RETURN_NOT_OK(
        streets->SetAttribute(id, "name", Value("V" + std::to_string(i))));
  }

  // --- Point layers. ---
  auto add_nodes = [&](const std::string& name, int count,
                       const char* prefix) -> Result<std::shared_ptr<Layer>> {
    auto layer = std::make_shared<Layer>(name, GeometryKind::kNode);
    for (int i = 0; i < count; ++i) {
      Point p(rng.UniformDouble(0, width), rng.UniformDouble(0, height));
      PIET_ASSIGN_OR_RETURN(GeometryId id, layer->AddPoint(p));
      PIET_RETURN_NOT_OK(layer->SetAttribute(
          id, "name", Value(std::string(prefix) + std::to_string(i))));
    }
    return layer;
  };
  PIET_ASSIGN_OR_RETURN(auto schools,
                        add_nodes(city.schools_layer, config.num_schools, "S"));
  PIET_ASSIGN_OR_RETURN(auto stores,
                        add_nodes(city.stores_layer, config.num_stores, "M"));
  PIET_ASSIGN_OR_RETURN(auto stops,
                        add_nodes(city.stops_layer, config.num_stops, "B"));

  // --- River: a meandering west-east polyline through the middle. ---
  auto rivers =
      std::make_shared<Layer>(city.rivers_layer, GeometryKind::kPolyline);
  if (config.with_river) {
    std::vector<Point> pts;
    int n = config.grid_cols + 1;
    for (int i = 0; i <= n; ++i) {
      double x = width * i / n;
      double y = height / 2.0 +
                 0.3 * height * std::sin(2.0 * M_PI * i / n) *
                     rng.UniformDouble(0.2, 0.5);
      pts.emplace_back(x, y);
    }
    PIET_ASSIGN_OR_RETURN(GeometryId id, rivers->AddPolyline(Polyline(pts)));
    PIET_RETURN_NOT_OK(rivers->SetAttribute(id, "name", Value("River")));
  } else {
    // Keep the layer valid but trivial so the schema check passes.
    PIET_ASSIGN_OR_RETURN(
        GeometryId id,
        rivers->AddPolyline(Polyline({Point(0, 0), Point(1e-3, 0)})));
    (void)id;
  }

  PIET_RETURN_NOT_OK(gis.AddLayer(neighborhoods));
  PIET_RETURN_NOT_OK(gis.AddLayer(streets));
  PIET_RETURN_NOT_OK(gis.AddLayer(schools));
  PIET_RETURN_NOT_OK(gis.AddLayer(stores));
  PIET_RETURN_NOT_OK(gis.AddLayer(stops));
  PIET_RETURN_NOT_OK(gis.AddLayer(rivers));

  // α bindings + application dimension instance.
  {
    PIET_ASSIGN_OR_RETURN(
        const olap::DimensionSchema* nb_schema,
        gis.schema().ApplicationDimension("Neighbourhoods"));
    olap::DimensionInstance nb(*nb_schema);
    for (GeometryId id : nb_ids) {
      Value name("N" + std::to_string(id));
      PIET_RETURN_NOT_OK(gis.BindAlpha("neighborhood", name, id));
      PIET_RETURN_NOT_OK(
          nb.AddRollup("neighborhood", name, "city", Value("SimCity")));
    }
    PIET_RETURN_NOT_OK(gis.AddApplicationInstance(std::move(nb)));
  }

  city.db = std::make_unique<core::GeoOlapDatabase>(std::move(gis));
  return city;
}

}  // namespace piet::workload
