#ifndef PIET_WORKLOAD_CITY_H_
#define PIET_WORKLOAD_CITY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/database.h"

namespace piet::workload {

/// Parameters of the synthetic city generator. The city is a grid partition
/// of neighborhoods (optionally with L-shaped non-convex blocks to exercise
/// the quadtree overlay), a street grid, schools/stores/stops as nodes, and
/// a river polyline — the thematic layers of the paper's motivating example.
struct CityConfig {
  uint64_t seed = 42;
  int grid_cols = 8;
  int grid_rows = 8;
  double cell_size = 100.0;
  /// Fraction of neighborhoods drawing a low (< 1500) income.
  double low_income_fraction = 0.3;
  /// Fraction of 2x2 blocks replaced by an L-shaped + square pair
  /// (non-convex; forces the quadtree overlay). 0 keeps all cells convex.
  double nonconvex_fraction = 0.0;
  int num_schools = 16;
  int num_stores = 24;
  int num_stops = 12;
  /// Street grid lines per axis (>= 2).
  int streets_per_axis = 5;
  bool with_river = true;
};

/// A generated city: a ready GeoOlapDatabase (no MOFTs yet) plus layer
/// names and handy metadata.
struct City {
  std::unique_ptr<core::GeoOlapDatabase> db;

  std::string neighborhoods_layer = "neighborhoods";
  std::string streets_layer = "streets";
  std::string schools_layer = "schools";
  std::string stores_layer = "stores";
  std::string stops_layer = "stops";
  std::string rivers_layer = "rivers";

  geometry::BoundingBox extent;
  int num_neighborhoods = 0;
  double income_threshold = 1500.0;
};

/// Generates a deterministic synthetic city.
Result<City> GenerateCity(const CityConfig& config);

}  // namespace piet::workload

#endif  // PIET_WORKLOAD_CITY_H_
