#include "workload/trajectories.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace piet::workload {

using geometry::Point;
using moving::Moft;
using moving::ObjectId;
using temporal::TimePoint;

namespace {

/// Continuous ground-truth motion: a sequence of straight legs at constant
/// speed. Sampling happens afterwards, which is what makes the
/// interpolation-fidelity experiments meaningful (the truth is known).
struct MotionPlan {
  std::vector<Point> waypoints;
  double speed;
  // Cumulative arc length per waypoint; built lazily by EnsureIndex().
  std::vector<double> cum;

  void EnsureIndex() {
    if (cum.size() == waypoints.size()) {
      return;
    }
    cum.clear();
    cum.reserve(waypoints.size());
    double acc = 0.0;
    for (size_t i = 0; i < waypoints.size(); ++i) {
      if (i > 0) {
        acc += Distance(waypoints[i - 1], waypoints[i]);
      }
      cum.push_back(acc);
    }
  }

  // Position after `elapsed` seconds from the first waypoint; clamps at the
  // final waypoint. Requires EnsureIndex().
  Point At(double elapsed) const {
    double target = elapsed * speed;
    if (waypoints.empty()) {
      return Point();
    }
    if (target >= cum.back()) {
      return waypoints.back();
    }
    auto it = std::upper_bound(cum.begin(), cum.end(), target);
    size_t i = static_cast<size_t>(it - cum.begin());
    // cum[i] > target and i >= 1 because cum[0] == 0 <= target.
    double leg = cum[i] - cum[i - 1];
    double u = leg > 0.0 ? (target - cum[i - 1]) / leg : 0.0;
    return waypoints[i - 1] + (waypoints[i] - waypoints[i - 1]) * u;
  }

  double TotalLength() const {
    double total = 0.0;
    for (size_t i = 1; i < waypoints.size(); ++i) {
      total += Distance(waypoints[i - 1], waypoints[i]);
    }
    return total;
  }
};

Point RandomPointIn(Random* rng, const geometry::BoundingBox& box) {
  return Point(rng->UniformDouble(box.min_x, box.max_x),
               rng->UniformDouble(box.min_y, box.max_y));
}

// Snaps a point to the nearest street-grid line coordinate.
double SnapTo(double v, const std::vector<double>& grid) {
  double best = grid.front();
  for (double g : grid) {
    if (std::abs(g - v) < std::abs(best - v)) {
      best = g;
    }
  }
  return best;
}

MotionPlan RandomWaypointPlan(Random* rng, const geometry::BoundingBox& box,
                              double speed, double duration) {
  MotionPlan plan;
  plan.speed = speed;
  plan.waypoints.push_back(RandomPointIn(rng, box));
  double needed = speed * duration;
  while (plan.TotalLength() < needed) {
    plan.waypoints.push_back(RandomPointIn(rng, box));
  }
  return plan;
}

MotionPlan StreetNetworkPlan(Random* rng, const City& city, double speed,
                             double duration) {
  // Manhattan walk on the street grid: alternate horizontal and vertical
  // moves between street intersections.
  MotionPlan plan;
  plan.speed = speed;
  const geometry::BoundingBox& box = city.extent;

  // Reconstruct the street coordinates from the generator's layout.
  auto streets = city.db->gis().GetLayer(city.streets_layer);
  std::vector<double> xs, ys;
  if (streets.ok()) {
    for (gis::GeometryId id : streets.ValueOrDie()->ids()) {
      auto line = streets.ValueOrDie()->GetPolyline(id);
      if (!line.ok()) {
        continue;
      }
      const auto& v = line.ValueOrDie()->vertices();
      if (v.size() >= 2 && v.front().y == v.back().y) {
        ys.push_back(v.front().y);
      } else if (v.size() >= 2 && v.front().x == v.back().x) {
        xs.push_back(v.front().x);
      }
    }
  }
  if (xs.empty() || ys.empty()) {
    return RandomWaypointPlan(rng, box, speed, duration);
  }

  Point cur(SnapTo(rng->UniformDouble(box.min_x, box.max_x), xs),
            SnapTo(rng->UniformDouble(box.min_y, box.max_y), ys));
  plan.waypoints.push_back(cur);
  double needed = speed * duration;
  bool horizontal = rng->Bernoulli(0.5);
  while (plan.TotalLength() < needed) {
    Point next = cur;
    if (horizontal) {
      next.x = xs[rng->Uniform(xs.size())];
    } else {
      next.y = ys[rng->Uniform(ys.size())];
    }
    if (!(next == cur)) {
      plan.waypoints.push_back(next);
      cur = next;
    }
    horizontal = !horizontal;
  }
  return plan;
}

MotionPlan CommuterPlan(Random* rng, const City& city, double speed,
                        double duration) {
  // Home biased toward low-income neighborhoods, work toward high-income.
  auto layer = city.db->gis().GetLayer(city.neighborhoods_layer);
  Point home = RandomPointIn(rng, city.extent);
  Point work = RandomPointIn(rng, city.extent);
  if (layer.ok()) {
    const gis::Layer& nb = *layer.ValueOrDie();
    std::vector<gis::GeometryId> low, high;
    for (gis::GeometryId id : nb.ids()) {
      auto income = nb.GetAttribute(id, "income");
      if (!income.ok()) {
        continue;
      }
      double v = income.ValueOrDie().AsNumeric().ValueOr(2000.0);
      (v < city.income_threshold ? low : high).push_back(id);
    }
    auto pick_in = [&](const std::vector<gis::GeometryId>& ids,
                       Point fallback) {
      if (ids.empty()) {
        return fallback;
      }
      gis::GeometryId id = ids[rng->Uniform(ids.size())];
      auto pg = nb.GetPolygon(id);
      if (!pg.ok()) {
        return fallback;
      }
      // Rejection-sample a point inside the polygon.
      geometry::BoundingBox box = pg.ValueOrDie()->Bounds();
      for (int attempt = 0; attempt < 64; ++attempt) {
        Point p = RandomPointIn(rng, box);
        if (pg.ValueOrDie()->Contains(p)) {
          return p;
        }
      }
      return pg.ValueOrDie()->Centroid();
    };
    home = pick_in(low, home);
    work = pick_in(high, work);
  }

  // Timeline: idle at home ~1/6 of the window, commute, work, commute back.
  MotionPlan plan;
  plan.speed = speed;
  plan.waypoints = {home, home, work, work, home};
  // Stretch idle periods by inserting repeated waypoints; with constant
  // speed, repeated points are traversed instantaneously, so instead we
  // emulate idling with micro-jitter loops near the anchor.
  MotionPlan jittered;
  jittered.speed = speed;
  double idle_len = speed * duration / 6.0;
  auto idle_loop = [&](Point anchor) {
    double walked = 0.0;
    Point cur = anchor;
    jittered.waypoints.push_back(cur);
    while (walked < idle_len) {
      Point next(anchor.x + rng->UniformDouble(-2, 2),
                 anchor.y + rng->UniformDouble(-2, 2));
      walked += Distance(cur, next);
      jittered.waypoints.push_back(next);
      cur = next;
    }
  };
  idle_loop(home);
  jittered.waypoints.push_back(work);
  idle_loop(work);
  jittered.waypoints.push_back(home);
  idle_loop(home);
  return jittered;
}

}  // namespace

Result<Moft> GenerateTrajectories(const City& city,
                                  const TrajectoryConfig& config) {
  if (config.num_objects < 1) {
    return Status::InvalidArgument("need at least one object");
  }
  if (config.sample_period <= 0.0 || config.duration <= 0.0) {
    return Status::InvalidArgument("duration and sample period must be > 0");
  }
  Random rng(config.seed);
  Moft moft;
  for (int obj = 0; obj < config.num_objects; ++obj) {
    MotionPlan plan;
    switch (config.model) {
      case MovementModel::kRandomWaypoint:
        plan = RandomWaypointPlan(&rng, city.extent, config.speed,
                                  config.duration);
        break;
      case MovementModel::kStreetNetwork:
        plan = StreetNetworkPlan(&rng, city, config.speed, config.duration);
        break;
      case MovementModel::kCommuter:
        plan = CommuterPlan(&rng, city, config.speed, config.duration);
        break;
    }
    plan.EnsureIndex();
    ObjectId oid = static_cast<ObjectId>(obj + 1);
    for (double elapsed = 0.0; elapsed <= config.duration;
         elapsed += config.sample_period) {
      Point p = plan.At(elapsed);
      if (config.jitter > 0.0) {
        p.x += rng.UniformDouble(-config.jitter, config.jitter);
        p.y += rng.UniformDouble(-config.jitter, config.jitter);
      }
      PIET_RETURN_NOT_OK(
          moft.Add(oid, config.start + elapsed, p));
    }
  }
  return moft;
}

}  // namespace piet::workload
