#include "olap/mdx.h"

#include <cctype>
#include <charconv>
#include <sstream>

#include "common/string_util.h"

namespace piet::olap::mdx {

namespace {

/// Tokenizer for the bracket-heavy MDX surface.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeKeyword(std::string_view kw) {
    SkipSpace();
    if (pos_ + kw.size() > text_.size()) {
      return false;
    }
    if (!EqualsIgnoreCase(text_.substr(pos_, kw.size()), kw)) {
      return false;
    }
    // Keyword boundary.
    size_t end = pos_ + kw.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  /// `[name]` — returns the bracket content.
  Result<std::string> ConsumeBracketed() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '[') {
      return Status::ParseError("expected '[' at offset " +
                                std::to_string(pos_));
    }
    size_t close = text_.find(']', pos_);
    if (close == std::string_view::npos) {
      return Status::ParseError("unterminated '[' at offset " +
                                std::to_string(pos_));
    }
    std::string name(text_.substr(pos_ + 1, close - pos_ - 1));
    pos_ = close + 1;
    return name;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

// Bracket contents that parse as numbers become numeric member values so
// MDX can address int-keyed members.
Value BracketToValue(const std::string& s) {
  if (!s.empty()) {
    double v = 0.0;
    auto res = std::from_chars(s.data(), s.data() + s.size(), v);
    if (res.ec == std::errc() && res.ptr == s.data() + s.size()) {
      return Value(v);
    }
  }
  return Value(s);
}

Result<MemberRef> ParseMemberRef(Scanner* scan) {
  MemberRef ref;
  PIET_ASSIGN_OR_RETURN(std::string first, scan->ConsumeBracketed());
  if (EqualsIgnoreCase(first, "Measures")) {
    ref.is_measure = true;
    if (!scan->ConsumeChar('.')) {
      return Status::ParseError("expected '.' after [Measures]");
    }
    PIET_ASSIGN_OR_RETURN(ref.measure, scan->ConsumeBracketed());
    return ref;
  }
  ref.dimension = first;
  if (!scan->ConsumeChar('.')) {
    return Status::ParseError("expected '.' after dimension name");
  }
  PIET_ASSIGN_OR_RETURN(ref.level, scan->ConsumeBracketed());
  if (!scan->ConsumeChar('.')) {
    return Status::ParseError("expected '.' after level name");
  }
  if (scan->ConsumeKeyword("Members")) {
    ref.all_members = true;
    return ref;
  }
  PIET_ASSIGN_OR_RETURN(std::string member, scan->ConsumeBracketed());
  ref.member = BracketToValue(member);
  return ref;
}

Result<std::vector<MemberRef>> ParseAxisSet(Scanner* scan) {
  if (!scan->ConsumeChar('{')) {
    return Status::ParseError("expected '{' opening an axis set");
  }
  std::vector<MemberRef> out;
  while (true) {
    PIET_ASSIGN_OR_RETURN(MemberRef ref, ParseMemberRef(scan));
    out.push_back(std::move(ref));
    if (scan->ConsumeChar(',')) {
      continue;
    }
    if (scan->ConsumeChar('}')) {
      break;
    }
    return Status::ParseError("expected ',' or '}' in axis set");
  }
  return out;
}

}  // namespace

Result<MdxQuery> ParseMdx(std::string_view text) {
  Scanner scan(text);
  MdxQuery query;
  if (!scan.ConsumeKeyword("SELECT")) {
    return Status::ParseError("expected SELECT");
  }
  PIET_ASSIGN_OR_RETURN(query.columns, ParseAxisSet(&scan));
  if (!scan.ConsumeKeyword("ON")) {
    return Status::ParseError("expected ON after axis set");
  }
  if (!scan.ConsumeKeyword("COLUMNS")) {
    return Status::ParseError("first axis must be ON COLUMNS");
  }
  if (scan.ConsumeChar(',')) {
    PIET_ASSIGN_OR_RETURN(query.rows, ParseAxisSet(&scan));
    if (!scan.ConsumeKeyword("ON") || !scan.ConsumeKeyword("ROWS")) {
      return Status::ParseError("second axis must be ON ROWS");
    }
  }
  if (!scan.ConsumeKeyword("FROM")) {
    return Status::ParseError("expected FROM");
  }
  PIET_ASSIGN_OR_RETURN(query.cube, scan.ConsumeBracketed());
  if (scan.ConsumeKeyword("WHERE")) {
    if (!scan.ConsumeChar('(')) {
      return Status::ParseError("expected '(' after WHERE");
    }
    while (true) {
      PIET_ASSIGN_OR_RETURN(MemberRef ref, ParseMemberRef(&scan));
      if (ref.is_measure || ref.all_members) {
        return Status::ParseError("slicer entries must be single members");
      }
      query.slicer.push_back(std::move(ref));
      if (scan.ConsumeChar(',')) {
        continue;
      }
      if (scan.ConsumeChar(')')) {
        break;
      }
      return Status::ParseError("expected ',' or ')' in slicer");
    }
  }
  if (!scan.AtEnd()) {
    return Status::ParseError("trailing content after MDX query");
  }
  return query;
}

std::string MdxResult::ToString() const {
  std::ostringstream os;
  os << std::string(18, ' ');
  for (const std::string& c : column_headers) {
    os << " | " << c;
  }
  os << "\n";
  for (size_t r = 0; r < row_headers.size(); ++r) {
    os << row_headers[r];
    if (row_headers[r].size() < 18) {
      os << std::string(18 - row_headers[r].size(), ' ');
    }
    for (const Value& cell : cells[r]) {
      os << " | " << cell.ToString();
    }
    os << "\n";
  }
  return os.str();
}

void MdxEngine::AddCube(const std::string& name, Cube cube) {
  cubes_.erase(name);
  cubes_.emplace(name, std::move(cube));
}

void MdxEngine::SetMeasureAggregate(const std::string& cube,
                                    const std::string& measure,
                                    AggFunction fn) {
  measure_agg_[cube + "\x1f" + measure] = fn;
}

Result<std::vector<MemberRef>> MdxEngine::ExpandAxis(
    const Cube& cube, const std::vector<MemberRef>& axis) const {
  std::vector<MemberRef> out;
  for (const MemberRef& ref : axis) {
    if (!ref.all_members) {
      out.push_back(ref);
      continue;
    }
    // Find the binding whose dimension matches, list the level's members.
    const DimensionBinding* binding = nullptr;
    for (const DimensionBinding& b : cube.bindings()) {
      if (b.dimension && b.dimension->schema().name() == ref.dimension) {
        binding = &b;
        break;
      }
    }
    if (binding == nullptr) {
      return Status::NotFound("no dimension '" + ref.dimension +
                              "' bound in the cube");
    }
    PIET_ASSIGN_OR_RETURN(std::vector<Value> members,
                          binding->dimension->Members(ref.level));
    for (const Value& m : members) {
      MemberRef concrete = ref;
      concrete.all_members = false;
      concrete.member = m;
      out.push_back(std::move(concrete));
    }
  }
  return out;
}

Result<bool> MdxEngine::RowMatches(const Cube& cube, const Row& row,
                                   const MemberRef& coord) const {
  if (coord.is_measure) {
    return true;  // Measures do not constrain rows.
  }
  // Find the binding for the coordinate's dimension.
  for (const DimensionBinding& b : cube.bindings()) {
    if (!b.dimension || b.dimension->schema().name() != coord.dimension) {
      continue;
    }
    PIET_ASSIGN_OR_RETURN(size_t idx, cube.base().ColumnIndex(b.column));
    const Value& base_member = row[idx];
    if (b.level == coord.level) {
      return base_member == coord.member;
    }
    Result<Value> rolled =
        b.dimension->RollupValue(b.level, base_member, coord.level);
    if (!rolled.ok()) {
      return false;  // Unmapped member: does not match.
    }
    return rolled.ValueOrDie() == coord.member;
  }
  return Status::NotFound("no dimension '" + coord.dimension +
                          "' bound in the cube");
}

Result<MdxResult> MdxEngine::Execute(const MdxQuery& query) const {
  auto it = cubes_.find(query.cube);
  if (it == cubes_.end()) {
    return Status::NotFound("no cube '" + query.cube + "'");
  }
  const Cube& cube = it->second;

  PIET_ASSIGN_OR_RETURN(std::vector<MemberRef> columns,
                        ExpandAxis(cube, query.columns));
  PIET_ASSIGN_OR_RETURN(std::vector<MemberRef> rows,
                        ExpandAxis(cube, query.rows));
  if (rows.empty()) {
    // Zero-dimensional rows axis: a single "(all)" row.
    MemberRef all;
    all.is_measure = true;  // Matches every row, headerless.
    all.measure = "";
    rows.push_back(all);
  }

  auto header_of = [](const MemberRef& ref) {
    if (ref.is_measure) {
      return ref.measure.empty() ? std::string("(all)") : ref.measure;
    }
    return ref.dimension + "." + ref.level + "." + ref.member.ToString();
  };

  MdxResult result;
  for (const MemberRef& c : columns) {
    result.column_headers.push_back(header_of(c));
  }
  for (const MemberRef& r : rows) {
    result.row_headers.push_back(header_of(r));
  }

  // Pre-filter by the slicer.
  std::vector<const Row*> candidate_rows;
  for (const Row& row : cube.base().rows()) {
    bool keep = true;
    for (const MemberRef& s : query.slicer) {
      PIET_ASSIGN_OR_RETURN(bool match, RowMatches(cube, row, s));
      if (!match) {
        keep = false;
        break;
      }
    }
    if (keep) {
      candidate_rows.push_back(&row);
    }
  }

  for (const MemberRef& row_coord : rows) {
    std::vector<Value> out_row;
    for (const MemberRef& col_coord : columns) {
      // Exactly one of row/column should name the measure; if neither
      // does, the cell is null.
      const MemberRef* measure_ref = nullptr;
      if (col_coord.is_measure && !col_coord.measure.empty()) {
        measure_ref = &col_coord;
      } else if (row_coord.is_measure && !row_coord.measure.empty()) {
        measure_ref = &row_coord;
      }
      if (measure_ref == nullptr) {
        out_row.push_back(Value());
        continue;
      }
      auto agg_it =
          measure_agg_.find(query.cube + "\x1f" + measure_ref->measure);
      AggFunction fn =
          agg_it != measure_agg_.end() ? agg_it->second : AggFunction::kSum;
      Aggregator agg(fn);
      PIET_ASSIGN_OR_RETURN(size_t measure_idx,
                            cube.base().ColumnIndex(measure_ref->measure));
      for (const Row* row : candidate_rows) {
        PIET_ASSIGN_OR_RETURN(bool row_ok,
                              RowMatches(cube, *row, row_coord));
        if (!row_ok) {
          continue;
        }
        PIET_ASSIGN_OR_RETURN(bool col_ok,
                              RowMatches(cube, *row, col_coord));
        if (!col_ok) {
          continue;
        }
        PIET_RETURN_NOT_OK(agg.Update((*row)[measure_idx]));
      }
      out_row.push_back(agg.Finish());
    }
    result.cells.push_back(std::move(out_row));
  }
  return result;
}

Result<MdxResult> MdxEngine::ExecuteString(std::string_view text) const {
  PIET_ASSIGN_OR_RETURN(MdxQuery query, ParseMdx(text));
  return Execute(query);
}

}  // namespace piet::olap::mdx
