#ifndef PIET_OLAP_CUBE_H_
#define PIET_OLAP_CUBE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "olap/aggregate.h"
#include "olap/dimension.h"
#include "olap/fact_table.h"

namespace piet::olap {

/// Binding of a fact-table dimension column to a dimension instance: the
/// column's values are members of `level` in `dimension`.
struct DimensionBinding {
  std::string column;
  std::shared_ptr<const DimensionInstance> dimension;
  std::string level;
};

/// A data cube: a base fact table whose dimension columns are bound to
/// dimension instances, supporting the usual OLAP operations. This realizes
/// the application part of the paper's model: facts stored at dimension
/// levels, aggregated along hierarchies.
class Cube {
 public:
  Cube(FactTable base, std::vector<DimensionBinding> bindings);

  const FactTable& base() const { return base_; }
  const std::vector<DimensionBinding>& bindings() const { return bindings_; }

  /// Validates that every bound column exists and all its values are
  /// members of the bound level.
  Status Validate() const;

  /// ROLLUP: re-keys `column` at coarser `target_level` (through the bound
  /// dimension's rollup functions), grouping all dimension columns and
  /// aggregating `measure` with `fn`. Unbound dimension columns group by
  /// their own value.
  Result<FactTable> RollUp(const std::string& column,
                           const std::string& target_level, AggFunction fn,
                           const std::string& measure) const;

  /// SLICE: fixes `column` == `member` and drops the column.
  Result<Cube> Slice(const std::string& column, const Value& member) const;

  /// DICE: keeps rows whose `column` value is in `members`.
  Result<Cube> Dice(const std::string& column,
                    const std::vector<Value>& members) const;

 private:
  Result<const DimensionBinding*> FindBinding(const std::string& column) const;

  FactTable base_;
  std::vector<DimensionBinding> bindings_;
};

}  // namespace piet::olap

#endif  // PIET_OLAP_CUBE_H_
