#ifndef PIET_OLAP_FACT_TABLE_H_
#define PIET_OLAP_FACT_TABLE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace piet::olap {

/// The role of a fact-table column.
enum class ColumnRole {
  kDimension = 0,  ///< A coordinate (dimension-level member or key).
  kMeasure,        ///< A numeric measure.
};

/// A fact-table column description.
struct ColumnDef {
  std::string name;
  ColumnRole role = ColumnRole::kDimension;
};

/// A row of Values, one per column.
using Row = std::vector<Value>;

/// A simple row-oriented relation with named columns, used for classical
/// fact tables in the application part (Sec. 3) and for the intermediate
/// relations produced by evaluating the region C (e.g. sets of (Oid, t)).
class FactTable {
 public:
  FactTable() = default;
  explicit FactTable(std::vector<ColumnDef> columns);

  /// Convenience: all names are dimensions except those listed as measures.
  static FactTable Make(const std::vector<std::string>& dimension_columns,
                        const std::vector<std::string>& measure_columns);

  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Index of the named column, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  bool HasColumn(const std::string& name) const {
    return ColumnIndex(name).ok();
  }

  /// Appends a row; arity must match the schema.
  Status Append(Row row);

  /// Rows satisfying `pred` (by value).
  FactTable Filter(const std::function<bool(const Row&)>& pred) const;

  /// Projection onto named columns; duplicates retained (bag semantics).
  Result<FactTable> Project(const std::vector<std::string>& names) const;

  /// Projection with duplicate elimination (set semantics).
  Result<FactTable> ProjectDistinct(const std::vector<std::string>& names) const;

  /// Value at (row, named column).
  Result<Value> At(size_t row, const std::string& column) const;

  /// Distinct values of one column, in first-appearance order.
  Result<std::vector<Value>> DistinctValues(const std::string& column) const;

  /// Pretty table rendering for examples/benches.
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::vector<ColumnDef> columns_;
  std::vector<Row> rows_;
};

}  // namespace piet::olap

#endif  // PIET_OLAP_FACT_TABLE_H_
