#ifndef PIET_OLAP_AGGREGATE_H_
#define PIET_OLAP_AGGREGATE_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "olap/fact_table.h"

namespace piet::olap {

/// The paper's AGG set (Def. 7, after Consens & Mendelzon [1]), extended
/// with COUNT DISTINCT which several Sec. 4 queries need ("number of cars" =
/// distinct object ids).
enum class AggFunction {
  kMin = 0,
  kMax,
  kCount,
  kSum,
  kAvg,
  kCountDistinct,
};

std::string_view AggFunctionToString(AggFunction f);
Result<AggFunction> AggFunctionFromString(std::string_view name);

/// Incremental scalar aggregator for one AGG function.
class Aggregator {
 public:
  explicit Aggregator(AggFunction fn) : fn_(fn) {}

  /// Feeds one value. COUNT accepts any value; the numeric functions
  /// require numeric input.
  Status Update(const Value& v);

  /// The aggregate of everything fed so far. Empty input yields COUNT 0 and
  /// null for the other functions.
  Value Finish() const;

  AggFunction function() const { return fn_; }

 private:
  AggFunction fn_;
  size_t count_ = 0;
  double sum_ = 0.0;
  bool has_minmax_ = false;
  Value min_;
  Value max_;
  std::vector<Value> distinct_;  // Sorted on demand in Finish().
};

/// The aggregate operation γ_{f A(X)}(r) of Definition 7: groups `table` by
/// the columns `group_by` (the X attributes) and aggregates column `agg_col`
/// (the A attribute) with `fn`. The output schema is X ++ [output_name]
/// where `output_name` defaults to "f(A)".
///
/// With an empty `group_by`, produces a single global row (the scalar
/// aggregate), matching the relational convention.
Result<FactTable> Aggregate(const FactTable& table,
                            const std::vector<std::string>& group_by,
                            AggFunction fn, const std::string& agg_col,
                            const std::string& output_name = "");

/// Scalar convenience: aggregates one column over the whole table.
Result<Value> AggregateScalar(const FactTable& table, AggFunction fn,
                              const std::string& agg_col);

}  // namespace piet::olap

#endif  // PIET_OLAP_AGGREGATE_H_
