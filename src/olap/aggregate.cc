#include "olap/aggregate.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace piet::olap {

std::string_view AggFunctionToString(AggFunction f) {
  switch (f) {
    case AggFunction::kMin:
      return "MIN";
    case AggFunction::kMax:
      return "MAX";
    case AggFunction::kCount:
      return "COUNT";
    case AggFunction::kSum:
      return "SUM";
    case AggFunction::kAvg:
      return "AVG";
    case AggFunction::kCountDistinct:
      return "COUNT_DISTINCT";
  }
  return "UNKNOWN";
}

Result<AggFunction> AggFunctionFromString(std::string_view name) {
  std::string up = ToUpper(name);
  if (up == "MIN") {
    return AggFunction::kMin;
  }
  if (up == "MAX") {
    return AggFunction::kMax;
  }
  if (up == "COUNT") {
    return AggFunction::kCount;
  }
  if (up == "SUM") {
    return AggFunction::kSum;
  }
  if (up == "AVG") {
    return AggFunction::kAvg;
  }
  if (up == "COUNT_DISTINCT" || up == "COUNT DISTINCT") {
    return AggFunction::kCountDistinct;
  }
  return Status::ParseError("unknown aggregate function '" +
                            std::string(name) + "'");
}

Status Aggregator::Update(const Value& v) {
  switch (fn_) {
    case AggFunction::kCount:
      ++count_;
      return Status::OK();
    case AggFunction::kCountDistinct:
      ++count_;
      distinct_.push_back(v);
      return Status::OK();
    case AggFunction::kSum:
    case AggFunction::kAvg: {
      PIET_ASSIGN_OR_RETURN(double x, v.AsNumeric());
      sum_ += x;
      ++count_;
      return Status::OK();
    }
    case AggFunction::kMin:
    case AggFunction::kMax:
      if (!v.is_numeric() && !v.is_string()) {
        return Status::TypeError("MIN/MAX needs ordered input, got " +
                                 v.ToString());
      }
      if (!has_minmax_) {
        min_ = max_ = v;
        has_minmax_ = true;
      } else {
        if (v < min_) {
          min_ = v;
        }
        if (max_ < v) {
          max_ = v;
        }
      }
      ++count_;
      return Status::OK();
  }
  return Status::Internal("unhandled aggregate function");
}

Value Aggregator::Finish() const {
  switch (fn_) {
    case AggFunction::kCount:
      return Value(static_cast<int64_t>(count_));
    case AggFunction::kCountDistinct: {
      std::vector<Value> sorted = distinct_;
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      return Value(static_cast<int64_t>(sorted.size()));
    }
    case AggFunction::kSum:
      return count_ == 0 ? Value() : Value(sum_);
    case AggFunction::kAvg:
      return count_ == 0 ? Value()
                         : Value(sum_ / static_cast<double>(count_));
    case AggFunction::kMin:
      return has_minmax_ ? min_ : Value();
    case AggFunction::kMax:
      return has_minmax_ ? max_ : Value();
  }
  return Value();
}

Result<FactTable> Aggregate(const FactTable& table,
                            const std::vector<std::string>& group_by,
                            AggFunction fn, const std::string& agg_col,
                            const std::string& output_name) {
  std::vector<size_t> key_idx;
  key_idx.reserve(group_by.size());
  for (const std::string& name : group_by) {
    PIET_ASSIGN_OR_RETURN(size_t i, table.ColumnIndex(name));
    key_idx.push_back(i);
  }
  PIET_ASSIGN_OR_RETURN(size_t agg_idx, table.ColumnIndex(agg_col));

  // Ordered map so the output has deterministic group order.
  std::map<Row, Aggregator> groups;
  for (const Row& r : table.rows()) {
    Row key;
    key.reserve(key_idx.size());
    for (size_t i : key_idx) {
      key.push_back(r[i]);
    }
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(std::move(key), Aggregator(fn)).first;
    }
    PIET_RETURN_NOT_OK(it->second.Update(r[agg_idx]));
  }

  std::string out_col = output_name.empty()
                            ? std::string(AggFunctionToString(fn)) + "(" +
                                  agg_col + ")"
                            : output_name;
  FactTable out = FactTable::Make(group_by, {out_col});
  if (groups.empty() && group_by.empty()) {
    // Scalar aggregate of an empty relation.
    Row row = {Aggregator(fn).Finish()};
    PIET_RETURN_NOT_OK(out.Append(std::move(row)));
    return out;
  }
  for (const auto& [key, agg] : groups) {
    Row row = key;
    row.push_back(agg.Finish());
    PIET_RETURN_NOT_OK(out.Append(std::move(row)));
  }
  return out;
}

Result<Value> AggregateScalar(const FactTable& table, AggFunction fn,
                              const std::string& agg_col) {
  PIET_ASSIGN_OR_RETURN(FactTable result, Aggregate(table, {}, fn, agg_col));
  if (result.num_rows() != 1) {
    return Status::Internal("scalar aggregate produced " +
                            std::to_string(result.num_rows()) + " rows");
  }
  return result.row(0)[0];
}

}  // namespace piet::olap
