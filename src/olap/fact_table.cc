#include "olap/fact_table.h"

#include <set>
#include <sstream>

namespace piet::olap {

FactTable::FactTable(std::vector<ColumnDef> columns)
    : columns_(std::move(columns)) {}

FactTable FactTable::Make(const std::vector<std::string>& dimension_columns,
                          const std::vector<std::string>& measure_columns) {
  std::vector<ColumnDef> cols;
  cols.reserve(dimension_columns.size() + measure_columns.size());
  for (const auto& name : dimension_columns) {
    cols.push_back({name, ColumnRole::kDimension});
  }
  for (const auto& name : measure_columns) {
    cols.push_back({name, ColumnRole::kMeasure});
  }
  return FactTable(std::move(cols));
}

Result<size_t> FactTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) {
      return i;
    }
  }
  return Status::NotFound("no column '" + name + "'");
}

Status FactTable::Append(Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

FactTable FactTable::Filter(const std::function<bool(const Row&)>& pred) const {
  FactTable out(columns_);
  for (const Row& r : rows_) {
    if (pred(r)) {
      out.rows_.push_back(r);
    }
  }
  return out;
}

Result<FactTable> FactTable::Project(
    const std::vector<std::string>& names) const {
  std::vector<size_t> idx;
  std::vector<ColumnDef> cols;
  for (const std::string& n : names) {
    PIET_ASSIGN_OR_RETURN(size_t i, ColumnIndex(n));
    idx.push_back(i);
    cols.push_back(columns_[i]);
  }
  FactTable out(std::move(cols));
  for (const Row& r : rows_) {
    Row pr;
    pr.reserve(idx.size());
    for (size_t i : idx) {
      pr.push_back(r[i]);
    }
    out.rows_.push_back(std::move(pr));
  }
  return out;
}

Result<FactTable> FactTable::ProjectDistinct(
    const std::vector<std::string>& names) const {
  PIET_ASSIGN_OR_RETURN(FactTable bag, Project(names));
  FactTable out(bag.columns_);
  std::set<Row> seen;
  for (Row& r : bag.rows_) {
    if (seen.insert(r).second) {
      out.rows_.push_back(std::move(r));
    }
  }
  return out;
}

Result<Value> FactTable::At(size_t row, const std::string& column) const {
  if (row >= rows_.size()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  PIET_ASSIGN_OR_RETURN(size_t i, ColumnIndex(column));
  return rows_[row][i];
}

Result<std::vector<Value>> FactTable::DistinctValues(
    const std::string& column) const {
  PIET_ASSIGN_OR_RETURN(size_t i, ColumnIndex(column));
  std::vector<Value> out;
  std::set<Value> seen;
  for (const Row& r : rows_) {
    if (seen.insert(r[i]).second) {
      out.push_back(r[i]);
    }
  }
  return out;
}

std::string FactTable::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) {
      os << " | ";
    }
    os << columns_[i].name;
  }
  os << "\n";
  size_t shown = 0;
  for (const Row& r : rows_) {
    if (shown++ >= max_rows) {
      os << "... (" << rows_.size() << " rows total)\n";
      break;
    }
    for (size_t i = 0; i < r.size(); ++i) {
      if (i > 0) {
        os << " | ";
      }
      os << r[i].ToString();
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace piet::olap
