#include "olap/cube.h"

#include <algorithm>

namespace piet::olap {

Cube::Cube(FactTable base, std::vector<DimensionBinding> bindings)
    : base_(std::move(base)), bindings_(std::move(bindings)) {}

Result<const DimensionBinding*> Cube::FindBinding(
    const std::string& column) const {
  for (const DimensionBinding& b : bindings_) {
    if (b.column == column) {
      return &b;
    }
  }
  return Status::NotFound("column '" + column + "' is not dimension-bound");
}

Status Cube::Validate() const {
  for (const DimensionBinding& b : bindings_) {
    PIET_ASSIGN_OR_RETURN(size_t idx, base_.ColumnIndex(b.column));
    if (base_.columns()[idx].role != ColumnRole::kDimension) {
      return Status::InvalidArgument("bound column '" + b.column +
                                     "' is a measure");
    }
    if (!b.dimension) {
      return Status::InvalidArgument("binding for '" + b.column +
                                     "' has no dimension instance");
    }
    if (!b.dimension->schema().HasLevel(b.level)) {
      return Status::InvalidArgument("no level '" + b.level +
                                     "' in dimension '" +
                                     b.dimension->schema().name() + "'");
    }
    for (const Row& r : base_.rows()) {
      if (!b.dimension->HasMember(b.level, r[idx])) {
        return Status::InvalidArgument(
            "fact value " + r[idx].ToString() + " is not a member of level " +
            b.level + " in dimension '" + b.dimension->schema().name() + "'");
      }
    }
  }
  return Status::OK();
}

Result<FactTable> Cube::RollUp(const std::string& column,
                               const std::string& target_level,
                               AggFunction fn,
                               const std::string& measure) const {
  PIET_ASSIGN_OR_RETURN(const DimensionBinding* binding, FindBinding(column));
  PIET_ASSIGN_OR_RETURN(size_t col_idx, base_.ColumnIndex(column));

  // Build a rewritten table where `column` holds the target-level parent.
  std::vector<ColumnDef> cols = base_.columns();
  FactTable rewritten(cols);
  for (const Row& r : base_.rows()) {
    Row copy = r;
    PIET_ASSIGN_OR_RETURN(
        Value parent,
        binding->dimension->RollupValue(binding->level, r[col_idx],
                                        target_level));
    copy[col_idx] = parent;
    PIET_RETURN_NOT_OK(rewritten.Append(std::move(copy)));
  }

  // Group by all dimension columns, aggregate the measure.
  std::vector<std::string> group_by;
  for (const ColumnDef& c : cols) {
    if (c.role == ColumnRole::kDimension && c.name != measure) {
      group_by.push_back(c.name);
    }
  }
  return Aggregate(rewritten, group_by, fn, measure);
}

Result<Cube> Cube::Slice(const std::string& column, const Value& member) const {
  PIET_ASSIGN_OR_RETURN(size_t idx, base_.ColumnIndex(column));
  FactTable filtered =
      base_.Filter([&](const Row& r) { return r[idx] == member; });
  // Drop the sliced column.
  std::vector<std::string> keep;
  for (const ColumnDef& c : filtered.columns()) {
    if (c.name != column) {
      keep.push_back(c.name);
    }
  }
  PIET_ASSIGN_OR_RETURN(FactTable projected, filtered.Project(keep));
  // Preserve column roles: Project keeps ColumnDef, so roles survive.
  std::vector<DimensionBinding> bindings;
  for (const DimensionBinding& b : bindings_) {
    if (b.column != column) {
      bindings.push_back(b);
    }
  }
  return Cube(std::move(projected), std::move(bindings));
}

Result<Cube> Cube::Dice(const std::string& column,
                        const std::vector<Value>& members) const {
  PIET_ASSIGN_OR_RETURN(size_t idx, base_.ColumnIndex(column));
  FactTable filtered = base_.Filter([&](const Row& r) {
    return std::find(members.begin(), members.end(), r[idx]) != members.end();
  });
  return Cube(std::move(filtered), bindings_);
}

}  // namespace piet::olap
