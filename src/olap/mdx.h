#ifndef PIET_OLAP_MDX_H_
#define PIET_OLAP_MDX_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "olap/aggregate.h"
#include "olap/cube.h"

namespace piet::olap::mdx {

/// A minimal MDX dialect for the application part — the paper's Piet-QL
/// embeds "an MDX dialect" as its OLAP section; this module provides that
/// surface over `olap::Cube`. Grammar (case-insensitive keywords,
/// bracketed identifiers):
///
///   query   := SELECT axis ON COLUMNS [, axis ON ROWS] FROM [cube]
///              [ WHERE slicer ]
///   axis    := '{' member (',' member)* '}'
///   member  := [Measures].[name]
///            | [Dim].[level].Members          -- every member of the level
///            | [Dim].[level].[member]         -- one member
///   slicer  := '(' [Dim].[level].[member] (',' ...)* ')'
///
/// Cells aggregate the named measures over fact rows matching the row/
/// column coordinates; coordinates at coarser levels than the fact grain
/// are resolved through the dimension instances' rollup functions.
///
/// Example:
///   SELECT {[Measures].[amount]} ON COLUMNS,
///          {[Geo].[country].Members} ON ROWS
///   FROM [Sales]
///   WHERE ([Product].[category].[beer])

/// One resolved member reference.
struct MemberRef {
  bool is_measure = false;
  bool all_members = false;  ///< `.Members` form.
  std::string dimension;     ///< Or "Measures".
  std::string level;
  Value member;              ///< Unset when all_members or is_measure-name.
  std::string measure;       ///< For measures: the measure column.
};

/// A parsed MDX query.
struct MdxQuery {
  std::vector<MemberRef> columns;
  std::vector<MemberRef> rows;
  std::string cube;
  std::vector<MemberRef> slicer;
};

/// Parses the textual form.
Result<MdxQuery> ParseMdx(std::string_view text);

/// The evaluated grid: row headers x column headers with scalar cells.
struct MdxResult {
  std::vector<std::string> column_headers;
  std::vector<std::string> row_headers;
  std::vector<std::vector<Value>> cells;  ///< cells[row][col].

  std::string ToString() const;
};

/// Evaluates MDX against a registry of named cubes. Each measure uses the
/// aggregate registered for it (default SUM).
class MdxEngine {
 public:
  MdxEngine() = default;

  /// Registers a cube under a name. The cube is copied.
  void AddCube(const std::string& name, Cube cube);

  /// Overrides the aggregate for a measure of a cube (default kSum).
  void SetMeasureAggregate(const std::string& cube,
                           const std::string& measure, AggFunction fn);

  Result<MdxResult> Execute(const MdxQuery& query) const;
  Result<MdxResult> ExecuteString(std::string_view text) const;

 private:
  /// Expands an axis spec into concrete coordinates (one per output
  /// header). Measures expand to themselves.
  Result<std::vector<MemberRef>> ExpandAxis(
      const Cube& cube, const std::vector<MemberRef>& axis) const;

  /// True if `row` (a base fact row) matches the member coordinate,
  /// rolling up through the bound dimension when needed.
  Result<bool> RowMatches(const Cube& cube, const Row& row,
                          const MemberRef& coord) const;

  std::map<std::string, Cube> cubes_;
  std::map<std::string, AggFunction> measure_agg_;
};

}  // namespace piet::olap::mdx

#endif  // PIET_OLAP_MDX_H_
