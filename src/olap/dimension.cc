#include "olap/dimension.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace piet::olap {

DimensionSchema::DimensionSchema(std::string name, std::string bottom_level)
    : name_(std::move(name)), bottom_(std::move(bottom_level)) {
  AddLevel(bottom_);
  AddLevel(kAll);
}

void DimensionSchema::AddLevel(const std::string& level) {
  if (!HasLevel(level)) {
    levels_.push_back(level);
    up_edges_.emplace(level, std::vector<std::string>{});
  }
}

Status DimensionSchema::AddEdge(const std::string& fine,
                                const std::string& coarse) {
  if (fine == coarse) {
    return Status::InvalidArgument("self-loop on level '" + fine + "'");
  }
  if (coarse == bottom_) {
    return Status::InvalidArgument("cannot roll up into the bottom level");
  }
  AddLevel(fine);
  AddLevel(coarse);
  // Reject edges that would create a cycle.
  if (RollsUp(coarse, fine)) {
    return Status::InvalidArgument("edge " + fine + "->" + coarse +
                                   " would create a cycle");
  }
  auto& ups = up_edges_[fine];
  if (std::find(ups.begin(), ups.end(), coarse) == ups.end()) {
    ups.push_back(coarse);
  }
  return Status::OK();
}

bool DimensionSchema::HasLevel(const std::string& level) const {
  return up_edges_.count(level) > 0;
}

std::vector<std::string> DimensionSchema::ParentsOf(
    const std::string& level) const {
  auto it = up_edges_.find(level);
  if (it == up_edges_.end()) {
    return {};
  }
  return it->second;
}

bool DimensionSchema::RollsUp(const std::string& fine,
                              const std::string& coarse) const {
  return !PathBetween(fine, coarse).empty();
}

std::vector<std::string> DimensionSchema::PathBetween(
    const std::string& fine, const std::string& coarse) const {
  if (!HasLevel(fine) || !HasLevel(coarse)) {
    return {};
  }
  if (fine == coarse) {
    return {fine};
  }
  // BFS for a shortest path.
  std::deque<std::string> queue = {fine};
  std::unordered_map<std::string, std::string> parent;
  parent[fine] = fine;
  while (!queue.empty()) {
    std::string cur = queue.front();
    queue.pop_front();
    for (const std::string& up : ParentsOf(cur)) {
      if (parent.count(up)) {
        continue;
      }
      parent[up] = cur;
      if (up == coarse) {
        std::vector<std::string> path = {coarse};
        std::string node = coarse;
        while (node != fine) {
          node = parent[node];
          path.push_back(node);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(up);
    }
  }
  return {};
}

Status DimensionSchema::Validate() const {
  for (const std::string& level : levels_) {
    if (level == kAll) {
      continue;
    }
    if (!RollsUp(level, kAll)) {
      return Status::InvalidArgument("level '" + level +
                                     "' does not reach All in dimension '" +
                                     name_ + "'");
    }
  }
  return Status::OK();
}

DimensionInstance::DimensionInstance(DimensionSchema schema)
    : schema_(std::move(schema)) {}

Status DimensionInstance::AddMember(const std::string& level,
                                    const Value& member) {
  if (!schema_.HasLevel(level)) {
    return Status::NotFound("no level '" + level + "' in dimension '" +
                            schema_.name() + "'");
  }
  auto& list = members_[level];
  if (std::find(list.begin(), list.end(), member) == list.end()) {
    list.push_back(member);
  }
  return Status::OK();
}

Status DimensionInstance::AddRollup(const std::string& fine,
                                    const Value& member,
                                    const std::string& coarse,
                                    const Value& parent) {
  const auto parents = schema_.ParentsOf(fine);
  if (std::find(parents.begin(), parents.end(), coarse) == parents.end()) {
    return Status::InvalidArgument("no schema edge " + fine + "->" + coarse +
                                   " in dimension '" + schema_.name() + "'");
  }
  PIET_RETURN_NOT_OK(AddMember(fine, member));
  PIET_RETURN_NOT_OK(AddMember(coarse, parent));
  auto& map = rollups_[EdgeKey(fine, coarse)];
  auto it = map.find(member);
  if (it != map.end() && !(it->second == parent)) {
    return Status::AlreadyExists("member " + member.ToString() + " at level " +
                                 fine + " already rolls up to " +
                                 it->second.ToString());
  }
  map[member] = parent;
  return Status::OK();
}

Result<std::vector<Value>> DimensionInstance::Members(
    const std::string& level) const {
  if (!schema_.HasLevel(level)) {
    return Status::NotFound("no level '" + level + "' in dimension '" +
                            schema_.name() + "'");
  }
  if (level == DimensionSchema::kAll) {
    return std::vector<Value>{Value("all")};
  }
  auto it = members_.find(level);
  if (it == members_.end()) {
    return std::vector<Value>{};
  }
  return it->second;
}

bool DimensionInstance::HasMember(const std::string& level,
                                  const Value& member) const {
  if (level == DimensionSchema::kAll) {
    return member == Value("all");
  }
  auto it = members_.find(level);
  if (it == members_.end()) {
    return false;
  }
  return std::find(it->second.begin(), it->second.end(), member) !=
         it->second.end();
}

Result<Value> DimensionInstance::RollupValue(const std::string& fine,
                                             const Value& member,
                                             const std::string& coarse) const {
  if (coarse == DimensionSchema::kAll) {
    return Value("all");
  }
  std::vector<std::string> path = schema_.PathBetween(fine, coarse);
  if (path.empty()) {
    return Status::InvalidArgument("level '" + coarse +
                                   "' not reachable from '" + fine + "'");
  }
  Value current = member;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    auto map_it = rollups_.find(EdgeKey(path[i], path[i + 1]));
    if (map_it == rollups_.end()) {
      return Status::NotFound("no rollup data for edge " + path[i] + "->" +
                              path[i + 1]);
    }
    auto val_it = map_it->second.find(current);
    if (val_it == map_it->second.end()) {
      return Status::NotFound("member " + current.ToString() +
                              " has no rollup along " + path[i] + "->" +
                              path[i + 1]);
    }
    current = val_it->second;
  }
  return current;
}

Result<std::vector<Value>> DimensionInstance::MembersUnder(
    const std::string& fine, const std::string& coarse,
    const Value& parent) const {
  PIET_ASSIGN_OR_RETURN(std::vector<Value> candidates, Members(fine));
  std::vector<Value> out;
  for (const Value& m : candidates) {
    Result<Value> up = RollupValue(fine, m, coarse);
    if (up.ok() && up.ValueOrDie() == parent) {
      out.push_back(m);
    }
  }
  return out;
}

Status DimensionInstance::CheckConsistency() const {
  PIET_RETURN_NOT_OK(schema_.Validate());
  // Totality of each populated edge over the fine level's members.
  for (const std::string& level : schema_.levels()) {
    auto mem_it = members_.find(level);
    if (mem_it == members_.end()) {
      continue;
    }
    for (const std::string& up : schema_.ParentsOf(level)) {
      if (up == DimensionSchema::kAll) {
        continue;  // Implicit rollup to "all".
      }
      auto map_it = rollups_.find(EdgeKey(level, up));
      for (const Value& m : mem_it->second) {
        if (map_it == rollups_.end() || !map_it->second.count(m)) {
          return Status::InvalidArgument(
              "rollup " + level + "->" + up + " undefined for member " +
              m.ToString() + " in dimension '" + schema_.name() + "'");
        }
      }
    }
  }
  // Path independence: all paths from a level to any reachable level agree.
  // We check pairwise via parents: for each level L with parents P1, P2 and
  // common ancestor A, composing through P1 and P2 must coincide.
  for (const std::string& level : schema_.levels()) {
    auto mem_it = members_.find(level);
    if (mem_it == members_.end()) {
      continue;
    }
    std::vector<std::string> parents = schema_.ParentsOf(level);
    for (size_t i = 0; i < parents.size(); ++i) {
      for (size_t j = i + 1; j < parents.size(); ++j) {
        for (const std::string& target : schema_.levels()) {
          if (target == DimensionSchema::kAll) {
            continue;
          }
          if (!schema_.RollsUp(parents[i], target) ||
              !schema_.RollsUp(parents[j], target)) {
            continue;
          }
          for (const Value& m : mem_it->second) {
            Result<Value> via_i = RollupValue(level, m, parents[i]);
            Result<Value> via_j = RollupValue(level, m, parents[j]);
            if (!via_i.ok() || !via_j.ok()) {
              continue;  // Totality failure already reported above.
            }
            Result<Value> a =
                RollupValue(parents[i], via_i.ValueOrDie(), target);
            Result<Value> b =
                RollupValue(parents[j], via_j.ValueOrDie(), target);
            if (a.ok() && b.ok() && !(a.ValueOrDie() == b.ValueOrDie())) {
              return Status::InvalidArgument(
                  "inconsistent rollup paths for member " + m.ToString() +
                  " from level " + level + " to " + target);
            }
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace piet::olap
