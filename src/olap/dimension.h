#ifndef PIET_OLAP_DIMENSION_H_
#define PIET_OLAP_DIMENSION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace piet::olap {

/// A dimension schema in the sense of Hurtado–Mendelzon–Vaisman [7] as used
/// by the paper (Def. 1, application part): a name, a set of levels, and a
/// partial order (child -> parent edges) with distinguished bottom level and
/// implicit top level "All".
class DimensionSchema {
 public:
  DimensionSchema() = default;
  DimensionSchema(std::string name, std::string bottom_level);

  /// Adds a level (idempotent).
  void AddLevel(const std::string& level);

  /// Declares `fine` rolls up to `coarse` (adds both levels if absent).
  Status AddEdge(const std::string& fine, const std::string& coarse);

  const std::string& name() const { return name_; }
  const std::string& bottom_level() const { return bottom_; }
  const std::vector<std::string>& levels() const { return levels_; }

  bool HasLevel(const std::string& level) const;

  /// Direct parents of `level`.
  std::vector<std::string> ParentsOf(const std::string& level) const;

  /// True if `coarse` is reachable from `fine` (reflexive).
  bool RollsUp(const std::string& fine, const std::string& coarse) const;

  /// A shortest edge path fine -> ... -> coarse, empty when unreachable.
  std::vector<std::string> PathBetween(const std::string& fine,
                                       const std::string& coarse) const;

  /// Validates the schema graph: acyclic and every level reaches "All".
  Status Validate() const;

  /// The distinguished top level name.
  static constexpr const char* kAll = "All";

 private:
  std::string name_;
  std::string bottom_;
  std::vector<std::string> levels_;
  // Adjacency: level -> direct coarser levels.
  std::unordered_map<std::string, std::vector<std::string>> up_edges_;
};

/// A dimension instance: members per level plus rollup *functions* between
/// adjacent levels (Def. 2's RUP set). Rollups must be total on the members
/// of the fine level; CheckConsistency verifies totality and that composed
/// paths agree (the classic summarizability precondition).
class DimensionInstance {
 public:
  DimensionInstance() = default;
  explicit DimensionInstance(DimensionSchema schema);

  const DimensionSchema& schema() const { return schema_; }

  /// Registers a member at a level.
  Status AddMember(const std::string& level, const Value& member);

  /// Declares RUP: member (at `fine`) rolls up to `parent` (at `coarse`).
  /// Both members are added to their levels if absent. `fine`->`coarse`
  /// must be a schema edge.
  Status AddRollup(const std::string& fine, const Value& member,
                   const std::string& coarse, const Value& parent);

  /// Members registered at a level. The "All" level implicitly holds the
  /// single member "all".
  Result<std::vector<Value>> Members(const std::string& level) const;

  bool HasMember(const std::string& level, const Value& member) const;

  /// Applies the composed rollup function from `fine` to `coarse` to
  /// `member`, following a shortest schema path. Everything rolls up to
  /// Value("all") at level "All".
  Result<Value> RollupValue(const std::string& fine, const Value& member,
                            const std::string& coarse) const;

  /// All members of `fine` that (transitively) roll up to `parent` at
  /// `coarse` — the "drill-down" inverse image.
  Result<std::vector<Value>> MembersUnder(const std::string& fine,
                                          const std::string& coarse,
                                          const Value& parent) const;

  /// Checks that every adjacent-level rollup is total on the fine level's
  /// members and that alternative paths to the same level compose to the
  /// same value.
  Status CheckConsistency() const;

 private:
  using ValueMap = std::unordered_map<Value, Value, ValueHash>;

  // Key for the rollup map of one schema edge.
  static std::string EdgeKey(const std::string& fine,
                             const std::string& coarse) {
    return fine + "\x1f" + coarse;
  }

  DimensionSchema schema_;
  std::unordered_map<std::string, std::vector<Value>> members_;
  std::unordered_map<std::string, ValueMap> rollups_;
};

}  // namespace piet::olap

#endif  // PIET_OLAP_DIMENSION_H_
