#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace piet::index {

using geometry::BoundingBox;
using geometry::Point;

RTree::RTree(size_t max_entries)
    : max_entries_(std::max<size_t>(4, max_entries)),
      min_entries_(std::max<size_t>(2, max_entries_ / 2)),
      root_(std::make_unique<Node>()) {}

BoundingBox RTree::NodeBounds(const Node& node) {
  BoundingBox box;
  if (node.is_leaf) {
    for (const Entry& e : node.entries) {
      box.ExtendWith(e.box);
    }
  } else {
    for (const auto& child : node.children) {
      box.ExtendWith(child->box);
    }
  }
  return box;
}

RTree RTree::BulkLoad(std::vector<Entry> entries, size_t max_entries) {
  RTree tree(max_entries);
  tree.size_ = entries.size();
  if (entries.empty()) {
    return tree;
  }

  size_t cap = tree.max_entries_;

  // STR: sort by center-x into vertical slabs, then by center-y within.
  size_t leaf_count = (entries.size() + cap - 1) / cap;
  size_t slab_count =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  size_t slab_size = slab_count * cap;

  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.box.Center().x < b.box.Center().x;
  });

  std::vector<std::unique_ptr<Node>> level;
  for (size_t s = 0; s < entries.size(); s += slab_size) {
    size_t end = std::min(entries.size(), s + slab_size);
    std::sort(entries.begin() + s, entries.begin() + end,
              [](const Entry& a, const Entry& b) {
                return a.box.Center().y < b.box.Center().y;
              });
    for (size_t i = s; i < end; i += cap) {
      auto node = std::make_unique<Node>();
      node->is_leaf = true;
      size_t leaf_end = std::min(end, i + cap);
      node->entries.assign(entries.begin() + i, entries.begin() + leaf_end);
      node->box = NodeBounds(*node);
      level.push_back(std::move(node));
    }
  }

  // Pack upward until a single root remains.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> next;
    for (size_t i = 0; i < level.size(); i += cap) {
      auto node = std::make_unique<Node>();
      node->is_leaf = false;
      size_t end = std::min(level.size(), i + cap);
      for (size_t j = i; j < end; ++j) {
        node->children.push_back(std::move(level[j]));
      }
      node->box = NodeBounds(*node);
      next.push_back(std::move(node));
    }
    level = std::move(next);
  }
  tree.root_ = std::move(level.front());
  return tree;
}

void RTree::Insert(const BoundingBox& box, Id id) {
  Entry entry{box, id};
  std::unique_ptr<Node> split;
  InsertRec(root_.get(), entry, 0, &split);
  if (split) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split));
    new_root->box = NodeBounds(*new_root);
    root_ = std::move(new_root);
  }
  ++size_;
}

void RTree::InsertRec(Node* node, const Entry& entry, size_t level,
                      std::unique_ptr<Node>* split_out) {
  node->box.ExtendWith(entry.box);
  if (node->is_leaf) {
    node->entries.push_back(entry);
    if (node->entries.size() > max_entries_) {
      SplitLeaf(node, split_out);
    }
    return;
  }

  // Choose the child needing least enlargement (ties: smaller area).
  Node* best = nullptr;
  double best_enlargement = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (const auto& child : node->children) {
    double enlargement = child->box.Enlargement(entry.box);
    double area = child->box.Area();
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement && area < best_area)) {
      best = child.get();
      best_enlargement = enlargement;
      best_area = area;
    }
  }
  std::unique_ptr<Node> child_split;
  InsertRec(best, entry, level + 1, &child_split);
  if (child_split) {
    node->children.push_back(std::move(child_split));
    if (node->children.size() > max_entries_) {
      SplitInternal(node, split_out);
    }
  }
}

namespace {

// Quadratic-split seed selection: the pair wasting the most area together.
template <typename GetBox, typename Item>
std::pair<size_t, size_t> PickSeeds(const std::vector<Item>& items,
                                    const GetBox& get_box) {
  size_t seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t j = i + 1; j < items.size(); ++j) {
      BoundingBox merged = get_box(items[i]).Union(get_box(items[j]));
      double waste =
          merged.Area() - get_box(items[i]).Area() - get_box(items[j]).Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  return {seed_a, seed_b};
}

// Distributes items between two groups by minimal enlargement, honoring the
// min-fill constraint.
template <typename GetBox, typename Item>
void DistributeQuadratic(std::vector<Item> items, const GetBox& get_box,
                         size_t min_fill, std::vector<Item>* group_a,
                         std::vector<Item>* group_b, BoundingBox* box_a,
                         BoundingBox* box_b) {
  auto [ia, ib] = PickSeeds(items, get_box);
  group_a->push_back(std::move(items[ia]));
  group_b->push_back(std::move(items[ib]));
  *box_a = get_box(group_a->front());
  *box_b = get_box(group_b->front());
  // Erase the larger index first.
  items.erase(items.begin() + std::max(ia, ib));
  items.erase(items.begin() + std::min(ia, ib));

  while (!items.empty()) {
    // Min-fill forcing.
    if (group_a->size() + items.size() == min_fill) {
      for (Item& it : items) {
        box_a->ExtendWith(get_box(it));
        group_a->push_back(std::move(it));
      }
      items.clear();
      break;
    }
    if (group_b->size() + items.size() == min_fill) {
      for (Item& it : items) {
        box_b->ExtendWith(get_box(it));
        group_b->push_back(std::move(it));
      }
      items.clear();
      break;
    }
    // Pick the item with the greatest preference difference.
    size_t best = 0;
    double best_diff = -1.0;
    for (size_t i = 0; i < items.size(); ++i) {
      double da = box_a->Enlargement(get_box(items[i]));
      double db = box_b->Enlargement(get_box(items[i]));
      double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
      }
    }
    double da = box_a->Enlargement(get_box(items[best]));
    double db = box_b->Enlargement(get_box(items[best]));
    if (da < db || (da == db && group_a->size() <= group_b->size())) {
      box_a->ExtendWith(get_box(items[best]));
      group_a->push_back(std::move(items[best]));
    } else {
      box_b->ExtendWith(get_box(items[best]));
      group_b->push_back(std::move(items[best]));
    }
    items.erase(items.begin() + best);
  }
}

}  // namespace

void RTree::SplitLeaf(Node* node, std::unique_ptr<Node>* out) {
  auto get_box = [](const Entry& e) { return e.box; };
  std::vector<Entry> items = std::move(node->entries);
  node->entries.clear();
  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = true;
  size_t min_fill = std::min(min_entries_ == 0 ? 2 : min_entries_,
                             items.size() / 2);
  DistributeQuadratic(std::move(items), get_box, std::max<size_t>(min_fill, 2),
                      &node->entries, &sibling->entries, &node->box,
                      &sibling->box);
  *out = std::move(sibling);
}

void RTree::SplitInternal(Node* node, std::unique_ptr<Node>* out) {
  auto get_box = [](const std::unique_ptr<Node>& n) { return n->box; };
  std::vector<std::unique_ptr<Node>> items = std::move(node->children);
  node->children.clear();
  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = false;
  size_t min_fill = std::min(min_entries_ == 0 ? 2 : min_entries_,
                             items.size() / 2);
  DistributeQuadratic(std::move(items), get_box, std::max<size_t>(min_fill, 2),
                      &node->children, &sibling->children, &node->box,
                      &sibling->box);
  *out = std::move(sibling);
}

std::vector<RTree::Id> RTree::Search(const BoundingBox& query) const {
  std::vector<Id> out;
  Visit(query, [&out](const Entry& e) {
    out.push_back(e.id);
    return true;
  });
  return out;
}

std::vector<RTree::Id> RTree::SearchPoint(Point p) const {
  BoundingBox q(p.x, p.y, p.x, p.y);
  return Search(q);
}

void RTree::Visit(const BoundingBox& query,
                  const std::function<bool(const Entry&)>& visitor) const {
  if (!root_) {
    return;
  }
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->box.Intersects(query)) {
      continue;
    }
    if (node->is_leaf) {
      for (const Entry& e : node->entries) {
        if (e.box.Intersects(query)) {
          if (!visitor(e)) {
            return;
          }
        }
      }
    } else {
      for (const auto& child : node->children) {
        stack.push_back(child.get());
      }
    }
  }
}

std::vector<RTree::Entry> RTree::Nearest(Point p, size_t k) const {
  std::vector<Entry> out;
  if (!root_ || size_ == 0 || k == 0) {
    return out;
  }
  // Best-first search: a min-heap over (distance, node-or-entry).
  struct Item {
    double dist;
    const Node* node;   // Non-null for internal items.
    const Entry* entry; // Non-null for leaf entries.
  };
  auto cmp = [](const Item& a, const Item& b) { return a.dist > b.dist; };
  std::priority_queue<Item, std::vector<Item>, decltype(cmp)> heap(cmp);
  heap.push({root_->box.SquaredDistanceTo(p), root_.get(), nullptr});
  while (!heap.empty() && out.size() < k) {
    Item item = heap.top();
    heap.pop();
    if (item.entry != nullptr) {
      out.push_back(*item.entry);
      continue;
    }
    const Node* node = item.node;
    if (node->is_leaf) {
      for (const Entry& e : node->entries) {
        heap.push({e.box.SquaredDistanceTo(p), nullptr, &e});
      }
    } else {
      for (const auto& child : node->children) {
        heap.push({child->box.SquaredDistanceTo(p), child.get(), nullptr});
      }
    }
  }
  return out;
}

size_t RTree::Height() const {
  if (size_ == 0) {
    return 0;
  }
  return HeightOf(root_.get());
}

size_t RTree::HeightOf(const Node* node) const {
  if (node->is_leaf) {
    return 1;
  }
  return 1 + HeightOf(node->children.front().get());
}

BoundingBox RTree::Bounds() const {
  return root_ ? root_->box : BoundingBox();
}

bool RTree::CheckInvariants() const {
  if (!root_) {
    return size_ == 0;
  }
  size_t leaf_depth = HeightOf(root_.get());
  return CheckNode(root_.get(), 1, leaf_depth);
}

bool RTree::CheckNode(const Node* node, size_t depth,
                      size_t leaf_depth) const {
  bool is_root = (node == root_.get());
  if (node->is_leaf) {
    if (depth != leaf_depth) {
      return false;
    }
    if (!is_root && node->entries.size() < 1) {
      return false;
    }
    if (node->entries.size() > max_entries_ + 0) {
      return false;
    }
    for (const Entry& e : node->entries) {
      if (!node->box.Contains(e.box)) {
        return false;
      }
    }
    return true;
  }
  if (node->children.empty()) {
    return false;
  }
  if (node->children.size() > max_entries_) {
    return false;
  }
  for (const auto& child : node->children) {
    if (!node->box.Contains(child->box)) {
      return false;
    }
    if (!CheckNode(child.get(), depth + 1, leaf_depth)) {
      return false;
    }
  }
  return true;
}

}  // namespace piet::index
