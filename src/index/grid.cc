#include "index/grid.h"

#include <algorithm>
#include <set>

namespace piet::index {

using geometry::BoundingBox;
using geometry::Point;

GridIndex::GridIndex(const BoundingBox& extent, size_t cells_per_axis)
    : extent_(extent), n_(std::max<size_t>(1, cells_per_axis)) {
  double w = std::max(extent_.width(), 1e-12);
  double h = std::max(extent_.height(), 1e-12);
  inv_step_x_ = static_cast<double>(n_) / w;
  inv_step_y_ = static_cast<double>(n_) / h;
  cells_.resize(n_ * n_);
}

size_t GridIndex::CellOf(double v, double lo, double inv_step) const {
  double idx = (v - lo) * inv_step;
  if (idx < 0.0) {
    return 0;
  }
  size_t i = static_cast<size_t>(idx);
  return std::min(i, n_ - 1);
}

void GridIndex::CellRange(const BoundingBox& box, size_t* x0, size_t* x1,
                          size_t* y0, size_t* y1) const {
  *x0 = CellOf(box.min_x, extent_.min_x, inv_step_x_);
  *x1 = CellOf(box.max_x, extent_.min_x, inv_step_x_);
  *y0 = CellOf(box.min_y, extent_.min_y, inv_step_y_);
  *y1 = CellOf(box.max_y, extent_.min_y, inv_step_y_);
}

void GridIndex::Insert(const BoundingBox& box, Id id) {
  size_t x0, x1, y0, y1;
  CellRange(box, &x0, &x1, &y0, &y1);
  for (size_t y = y0; y <= y1; ++y) {
    for (size_t x = x0; x <= x1; ++x) {
      cells_[y * n_ + x].push_back({box, id});
    }
  }
  ++size_;
}

std::vector<GridIndex::Id> GridIndex::SearchPoint(Point p) const {
  std::vector<Id> out;
  size_t cx = CellOf(p.x, extent_.min_x, inv_step_x_);
  size_t cy = CellOf(p.y, extent_.min_y, inv_step_y_);
  for (const Slot& s : cells_[cy * n_ + cx]) {
    if (s.box.Contains(p)) {
      out.push_back(s.id);
    }
  }
  return out;
}

std::vector<GridIndex::Id> GridIndex::Search(const BoundingBox& query) const {
  std::set<Id> out;
  size_t x0, x1, y0, y1;
  CellRange(query, &x0, &x1, &y0, &y1);
  for (size_t y = y0; y <= y1; ++y) {
    for (size_t x = x0; x <= x1; ++x) {
      for (const Slot& s : cells_[y * n_ + x]) {
        if (s.box.Intersects(query)) {
          out.insert(s.id);
        }
      }
    }
  }
  return std::vector<Id>(out.begin(), out.end());
}

}  // namespace piet::index
