#include "index/agg_rtree.h"

#include <algorithm>
#include <cmath>

namespace piet::index {

using geometry::BoundingBox;

AggregateRTree::AggregateRTree(
    std::vector<std::pair<RegionId, BoundingBox>> regions, double bucket_width,
    size_t max_entries)
    : bucket_width_(bucket_width > 0 ? bucket_width : 1.0) {
  size_t cap = std::max<size_t>(4, max_entries);

  leaves_.reserve(regions.size());
  for (const auto& [id, box] : regions) {
    Leaf leaf;
    leaf.id = id;
    leaf.box = box;
    region_slot_[id] = leaves_.size();
    leaves_.push_back(std::move(leaf));
  }

  // STR packing of leaf slots into leaf nodes.
  std::vector<size_t> order(leaves_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return leaves_[a].box.Center().x < leaves_[b].box.Center().x;
  });
  size_t leaf_node_count = order.empty() ? 1 : (order.size() + cap - 1) / cap;
  size_t slab_count = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaf_node_count))));
  size_t slab_size = std::max<size_t>(1, slab_count * cap);
  for (size_t s = 0; s < order.size(); s += slab_size) {
    size_t end = std::min(order.size(), s + slab_size);
    std::sort(order.begin() + s, order.begin() + end,
              [this](size_t a, size_t b) {
                return leaves_[a].box.Center().y < leaves_[b].box.Center().y;
              });
  }

  // Build leaf-level nodes.
  std::vector<size_t> level;  // Node indices of the current level.
  for (size_t i = 0; i < order.size(); i += cap) {
    Node node;
    node.is_leaf = true;
    size_t end = std::min(order.size(), i + cap);
    for (size_t j = i; j < end; ++j) {
      node.leaf_slots.push_back(order[j]);
      node.box.ExtendWith(leaves_[order[j]].box);
    }
    nodes_.push_back(std::move(node));
    level.push_back(nodes_.size() - 1);
  }
  if (level.empty()) {
    nodes_.push_back(Node{});
    level.push_back(0);
  }

  // Pack internal levels.
  while (level.size() > 1) {
    std::vector<size_t> next;
    for (size_t i = 0; i < level.size(); i += cap) {
      Node node;
      node.is_leaf = false;
      size_t end = std::min(level.size(), i + cap);
      for (size_t j = i; j < end; ++j) {
        node.child_nodes.push_back(level[j]);
        node.box.ExtendWith(nodes_[level[j]].box);
      }
      nodes_.push_back(std::move(node));
      next.push_back(nodes_.size() - 1);
    }
    level = std::move(next);
  }

  // Move the root to index 0 for a fixed entry point.
  size_t root = level.front();
  if (root != 0) {
    std::swap(nodes_[0], nodes_[root]);
    // Fix child references to the swapped pair.
    for (Node& n : nodes_) {
      for (size_t& c : n.child_nodes) {
        if (c == 0) {
          c = root;
        } else if (c == root) {
          c = 0;
        }
      }
    }
  }

  // Record root->parent-node paths per leaf slot for propagation.
  leaf_paths_.assign(leaves_.size(), {});
  std::vector<size_t> path;
  // DFS from root.
  struct Frame {
    size_t node;
    size_t next_child;
  };
  std::vector<Frame> stack = {{0, 0}};
  path.push_back(0);
  while (!stack.empty()) {
    Frame& f = stack.back();
    Node& n = nodes_[f.node];
    if (n.is_leaf) {
      for (size_t slot : n.leaf_slots) {
        leaf_paths_[slot] = path;
        leaves_[slot].parent = f.node;
      }
      stack.pop_back();
      path.pop_back();
      continue;
    }
    if (f.next_child >= n.child_nodes.size()) {
      stack.pop_back();
      path.pop_back();
      continue;
    }
    size_t child = n.child_nodes[f.next_child++];
    stack.push_back({child, 0});
    path.push_back(child);
  }
}

Status AggregateRTree::AddObservation(RegionId region, temporal::TimePoint t,
                                      double count) {
  auto it = region_slot_.find(region);
  if (it == region_slot_.end()) {
    return Status::NotFound("unknown region id " + std::to_string(region));
  }
  int64_t bucket = BucketOf(t);
  leaves_[it->second].buckets[bucket] += count;
  for (size_t node_idx : leaf_paths_[it->second]) {
    nodes_[node_idx].buckets[bucket] += count;
  }
  return Status::OK();
}

double AggregateRTree::SumBuckets(const std::map<int64_t, double>& buckets,
                                  int64_t b0, int64_t b1) {
  double total = 0.0;
  for (auto it = buckets.lower_bound(b0); it != buckets.end() && it->first <= b1;
       ++it) {
    total += it->second;
  }
  return total;
}

double AggregateRTree::Count(const BoundingBox& window,
                             const temporal::Interval& interval) const {
  int64_t b0 = BucketOf(interval.begin);
  int64_t b1 = BucketOf(interval.end);
  // A query ending exactly on a bucket boundary should not include the
  // following bucket.
  if (interval.end.seconds == std::floor(interval.end.seconds / bucket_width_) *
                                  bucket_width_ &&
      b1 > b0) {
    --b1;
  }
  last_nodes_visited_ = 0;
  double total = 0.0;
  std::vector<size_t> stack = {0};
  while (!stack.empty()) {
    size_t idx = stack.back();
    stack.pop_back();
    const Node& node = nodes_[idx];
    ++last_nodes_visited_;
    if (!node.box.Intersects(window)) {
      continue;
    }
    if (window.Contains(node.box)) {
      total += SumBuckets(node.buckets, b0, b1);  // Pre-aggregated fast path.
      continue;
    }
    if (node.is_leaf) {
      for (size_t slot : node.leaf_slots) {
        if (leaves_[slot].box.Intersects(window)) {
          total += SumBuckets(leaves_[slot].buckets, b0, b1);
        }
      }
    } else {
      for (size_t child : node.child_nodes) {
        stack.push_back(child);
      }
    }
  }
  return total;
}

Result<double> AggregateRTree::CountRegion(
    RegionId region, const temporal::Interval& interval) const {
  auto it = region_slot_.find(region);
  if (it == region_slot_.end()) {
    return Status::NotFound("unknown region id " + std::to_string(region));
  }
  int64_t b0 = BucketOf(interval.begin);
  int64_t b1 = BucketOf(interval.end);
  if (interval.end.seconds == std::floor(interval.end.seconds / bucket_width_) *
                                  bucket_width_ &&
      b1 > b0) {
    --b1;
  }
  return SumBuckets(leaves_[it->second].buckets, b0, b1);
}

}  // namespace piet::index
