#ifndef PIET_INDEX_RTREE_H_
#define PIET_INDEX_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"

namespace piet::index {

/// An R-tree over (BoundingBox, id) entries, with quadratic-split dynamic
/// insertion and Sort-Tile-Recursive (STR) bulk loading. Used for
/// point-location candidates over layer polygons and for the Sec. 5
/// index-accelerated evaluation strategy.
class RTree {
 public:
  using Id = int64_t;

  struct Entry {
    geometry::BoundingBox box;
    Id id = 0;
  };

  /// `max_entries` per node; min is max/2.
  explicit RTree(size_t max_entries = 16);

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) noexcept = default;
  RTree& operator=(RTree&&) noexcept = default;

  /// Builds a packed tree from scratch with STR; replaces current content.
  static RTree BulkLoad(std::vector<Entry> entries, size_t max_entries = 16);

  /// Inserts one entry (quadratic split on overflow).
  void Insert(const geometry::BoundingBox& box, Id id);

  /// Ids of entries whose box intersects `query`.
  std::vector<Id> Search(const geometry::BoundingBox& query) const;

  /// Ids of entries whose box contains `p`.
  std::vector<Id> SearchPoint(geometry::Point p) const;

  /// The `k` entries with smallest box distance to `p`, nearest first
  /// (best-first search over node boxes). For point entries this is exact
  /// kNN; for extended boxes it ranks by minimum box distance.
  std::vector<Entry> Nearest(geometry::Point p, size_t k) const;

  /// Visits matching entries without materializing a vector; return false
  /// from the visitor to stop early.
  void Visit(const geometry::BoundingBox& query,
             const std::function<bool(const Entry&)>& visitor) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Tree height (0 for the empty tree, 1 for a leaf-only root).
  size_t Height() const;
  geometry::BoundingBox Bounds() const;

  /// Structural invariants: node fill bounds, box containment, leaf depth
  /// uniformity. Used by property tests.
  bool CheckInvariants() const;

 private:
  struct Node {
    bool is_leaf = true;
    geometry::BoundingBox box;
    std::vector<Entry> entries;                      // Leaf payload.
    std::vector<std::unique_ptr<Node>> children;     // Internal payload.
  };

  void InsertRec(Node* node, const Entry& entry, size_t level,
                 std::unique_ptr<Node>* split_out);
  void SplitLeaf(Node* node, std::unique_ptr<Node>* out);
  void SplitInternal(Node* node, std::unique_ptr<Node>* out);
  static geometry::BoundingBox NodeBounds(const Node& node);
  size_t HeightOf(const Node* node) const;
  bool CheckNode(const Node* node, size_t depth, size_t leaf_depth) const;

  size_t max_entries_;
  size_t min_entries_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace piet::index

#endif  // PIET_INDEX_RTREE_H_
