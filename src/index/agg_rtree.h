#ifndef PIET_INDEX_AGG_RTREE_H_
#define PIET_INDEX_AGG_RTREE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/result.h"
#include "geometry/box.h"
#include "temporal/interval.h"

namespace piet::index {

/// An aggregate R-tree in the spirit of Papadias et al.'s aRB-tree (the
/// paper's cited approach for historical aggregate information about moving
/// objects, Sec. 2): a spatial tree over fixed regions where every node
/// stores pre-aggregated per-time-bucket counts of the observations beneath
/// it. COUNT(window, interval) queries then read pre-aggregated sums from
/// internal nodes whose box is fully contained in the window, instead of
/// scanning raw observations.
///
/// Time is discretized into buckets of `bucket_width` seconds. Queries are
/// exact when their interval aligns with bucket boundaries; otherwise the
/// result counts every bucket the interval overlaps (the classic
/// pre-aggregation granularity trade-off, benchmarked in E5).
class AggregateRTree {
 public:
  using RegionId = int64_t;

  /// `regions` fixes the indexed region set (id + box). The tree is packed
  /// by STR once at construction.
  AggregateRTree(std::vector<std::pair<RegionId, geometry::BoundingBox>> regions,
                 double bucket_width, size_t max_entries = 16);

  /// Adds `count` observations for `region` at instant `t`. Unknown region
  /// ids are reported.
  Status AddObservation(RegionId region, temporal::TimePoint t,
                        double count = 1.0);

  /// Total observation count within regions whose *box* intersects `window`
  /// during `interval` (bucket-granular). Pure index read; cost is
  /// proportional to the number of visited nodes, not observations.
  double Count(const geometry::BoundingBox& window,
               const temporal::Interval& interval) const;

  /// Count for one region id over `interval`.
  Result<double> CountRegion(RegionId region,
                             const temporal::Interval& interval) const;

  double bucket_width() const { return bucket_width_; }
  size_t num_regions() const { return leaves_.size(); }

  /// Nodes touched by the last Count() call; benchmark instrumentation.
  size_t last_nodes_visited() const { return last_nodes_visited_; }

 private:
  struct Node {
    geometry::BoundingBox box;
    bool is_leaf = false;
    std::vector<size_t> child_nodes;   // Indices into nodes_ (internal).
    std::vector<size_t> leaf_slots;    // Indices into leaves_ (leaf).
    // bucket index -> aggregated count under this node.
    std::map<int64_t, double> buckets;
  };

  struct Leaf {
    RegionId id;
    geometry::BoundingBox box;
    std::map<int64_t, double> buckets;
    size_t parent = 0;  // Node index owning this leaf slot.
  };

  int64_t BucketOf(temporal::TimePoint t) const {
    return static_cast<int64_t>(std::floor(t.seconds / bucket_width_));
  }

  /// Sums a node's buckets over the bucket range [b0, b1].
  static double SumBuckets(const std::map<int64_t, double>& buckets,
                           int64_t b0, int64_t b1);

  std::vector<Node> nodes_;   // nodes_[0] is the root.
  std::vector<Leaf> leaves_;
  std::map<RegionId, size_t> region_slot_;
  // Path (node indices root->leaf-parent) for each leaf slot, for upward
  // propagation of observations.
  std::vector<std::vector<size_t>> leaf_paths_;
  double bucket_width_;
  mutable size_t last_nodes_visited_ = 0;
};

}  // namespace piet::index

#endif  // PIET_INDEX_AGG_RTREE_H_
