#ifndef PIET_INDEX_GRID_H_
#define PIET_INDEX_GRID_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"

namespace piet::index {

/// A uniform grid over a fixed extent, bucketing (box, id) entries into
/// every overlapped cell. Cheap to build, good for point location over
/// evenly-sized polygons (the overlay store uses one).
class GridIndex {
 public:
  using Id = int64_t;

  /// `extent` must be non-empty; `cells_per_axis` >= 1.
  GridIndex(const geometry::BoundingBox& extent, size_t cells_per_axis);

  void Insert(const geometry::BoundingBox& box, Id id);

  /// Candidate ids whose box may contain `p` (exact box test applied).
  std::vector<Id> SearchPoint(geometry::Point p) const;

  /// Allocation-free point query: invokes `fn(id)` for every entry whose
  /// box contains `p`.
  template <typename Fn>
  void VisitPoint(geometry::Point p, Fn&& fn) const {
    size_t cx = CellOf(p.x, extent_.min_x, inv_step_x_);
    size_t cy = CellOf(p.y, extent_.min_y, inv_step_y_);
    for (const Slot& s : cells_[cy * n_ + cx]) {
      if (s.box.Contains(p)) {
        fn(s.id);
      }
    }
  }

  /// Candidate ids whose box intersects `query`.
  std::vector<Id> Search(const geometry::BoundingBox& query) const;

  size_t size() const { return size_; }
  size_t cells_per_axis() const { return n_; }

 private:
  struct Slot {
    geometry::BoundingBox box;
    Id id;
  };

  size_t CellOf(double v, double lo, double inv_step) const;
  void CellRange(const geometry::BoundingBox& box, size_t* x0, size_t* x1,
                 size_t* y0, size_t* y1) const;

  geometry::BoundingBox extent_;
  size_t n_;
  double inv_step_x_;
  double inv_step_y_;
  std::vector<std::vector<Slot>> cells_;
  size_t size_ = 0;
};

}  // namespace piet::index

#endif  // PIET_INDEX_GRID_H_
