#ifndef PIET_TEMPORAL_CALENDAR_H_
#define PIET_TEMPORAL_CALENDAR_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "temporal/time_point.h"

namespace piet::temporal {

/// Days of the week.
enum class DayOfWeek {
  kMonday = 0,
  kTuesday,
  kWednesday,
  kThursday,
  kFriday,
  kSaturday,
  kSunday,
};

std::string_view DayOfWeekToString(DayOfWeek d);

/// The paper's `timeOfDay` category (rollup target of `hour`).
enum class TimeOfDay {
  kNight = 0,    ///< [00:00, 06:00)
  kMorning,      ///< [06:00, 12:00)
  kAfternoon,    ///< [12:00, 18:00)
  kEvening,      ///< [18:00, 24:00)
};

std::string_view TimeOfDayToString(TimeOfDay t);

/// The paper's `typeOfDay` category: Weekday / Weekend.
enum class TypeOfDay {
  kWeekday = 0,
  kWeekend,
};

std::string_view TypeOfDayToString(TypeOfDay t);

/// Broken-down civil time (proleptic Gregorian, no time zones or leap
/// seconds — the model only needs consistent rollups, not UTC fidelity).
struct CivilTime {
  int year = 2000;
  int month = 1;   ///< 1-12
  int day = 1;     ///< 1-31
  int hour = 0;    ///< 0-23
  int minute = 0;  ///< 0-59
  double second = 0.0;

  std::string ToString() const;  ///< "YYYY-MM-DD HH:MM:SS"
};

/// True for leap years in the proleptic Gregorian calendar.
bool IsLeapYear(int year);

/// Days in the given month (1-12) of `year`.
int DaysInMonth(int year, int month);

/// Converts an instant to broken-down civil time.
CivilTime ToCivil(TimePoint t);

/// Converts civil time to an instant; validates field ranges.
Result<TimePoint> FromCivil(const CivilTime& civil);

/// Convenience constructor: "YYYY-MM-DD HH:MM[:SS]" or "YYYY-MM-DD".
Result<TimePoint> ParseTimePoint(std::string_view text);

/// Day of week of the instant.
DayOfWeek GetDayOfWeek(TimePoint t);

/// Hour-of-day of the instant (0-23).
int GetHourOfDay(TimePoint t);

/// The paper's timeOfDay rollup.
TimeOfDay GetTimeOfDay(TimePoint t);

/// The paper's typeOfDay rollup (Weekday / Weekend).
TypeOfDay GetTypeOfDay(TimePoint t);

/// Midnight at the start of the instant's civil day.
TimePoint StartOfDay(TimePoint t);

/// Start of the instant's civil hour.
TimePoint StartOfHour(TimePoint t);

}  // namespace piet::temporal

#endif  // PIET_TEMPORAL_CALENDAR_H_
