#include "temporal/interval.h"

#include <algorithm>
#include <sstream>

namespace piet::temporal {

std::string Interval::ToString() const {
  std::ostringstream os;
  os << "[" << begin.seconds << ", " << end.seconds << "]";
  return os.str();
}

IntervalSet::IntervalSet(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  Canonicalize();
}

void IntervalSet::Canonicalize() {
  std::sort(intervals_.begin(), intervals_.end(),
            [](const Interval& a, const Interval& b) {
              if (a.begin != b.begin) {
                return a.begin < b.begin;
              }
              return a.end < b.end;
            });
  std::vector<Interval> merged;
  for (const Interval& iv : intervals_) {
    if (iv.end < iv.begin) {
      continue;  // Ignore malformed input defensively.
    }
    if (!merged.empty() && iv.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  intervals_ = std::move(merged);
}

Duration IntervalSet::TotalLength() const {
  Duration total = 0.0;
  for (const Interval& iv : intervals_) {
    total += iv.Length();
  }
  return total;
}

bool IntervalSet::Contains(TimePoint t) const {
  // Binary search over sorted disjoint intervals.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](TimePoint v, const Interval& iv) { return v < iv.begin; });
  if (it == intervals_.begin()) {
    return false;
  }
  --it;
  return it->Contains(t);
}

IntervalSet IntervalSet::Union(const IntervalSet& other) const {
  std::vector<Interval> all = intervals_;
  all.insert(all.end(), other.intervals_.begin(), other.intervals_.end());
  return IntervalSet(std::move(all));
}

IntervalSet IntervalSet::Intersect(const IntervalSet& other) const {
  std::vector<Interval> out;
  size_t i = 0, j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    TimePoint lo = std::max(a.begin, b.begin);
    TimePoint hi = std::min(a.end, b.end);
    if (lo <= hi) {
      out.emplace_back(lo, hi);
    }
    if (a.end < b.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return IntervalSet(std::move(out));
}

IntervalSet IntervalSet::Clip(const Interval& window) const {
  return Intersect(IntervalSet({window}));
}

void IntervalSet::Add(const Interval& interval) {
  intervals_.push_back(interval);
  Canonicalize();
}

IntervalSet IntervalSet::WithoutPoints() const {
  std::vector<Interval> out;
  for (const Interval& iv : intervals_) {
    if (!iv.IsPoint()) {
      out.push_back(iv);
    }
  }
  return IntervalSet(std::move(out));
}

std::string IntervalSet::ToString() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << intervals_[i].ToString();
  }
  os << "}";
  return os.str();
}

}  // namespace piet::temporal
