#ifndef PIET_TEMPORAL_TIME_POINT_H_
#define PIET_TEMPORAL_TIME_POINT_H_

#include <cstdint>
#include <string>

namespace piet::temporal {

/// A duration in seconds (double so interpolated instants are exact enough;
/// the paper's samples carry rational timestamps).
using Duration = double;

/// An instant on the time line, measured in seconds since the epoch
/// 2000-01-01 00:00:00 (a Saturday). Double-valued because linear
/// interpolation between samples produces non-integer instants.
struct TimePoint {
  double seconds = 0.0;

  constexpr TimePoint() = default;
  constexpr explicit TimePoint(double s) : seconds(s) {}

  friend constexpr bool operator==(TimePoint a, TimePoint b) {
    return a.seconds == b.seconds;
  }
  friend constexpr bool operator!=(TimePoint a, TimePoint b) {
    return !(a == b);
  }
  friend constexpr bool operator<(TimePoint a, TimePoint b) {
    return a.seconds < b.seconds;
  }
  friend constexpr bool operator<=(TimePoint a, TimePoint b) {
    return a.seconds <= b.seconds;
  }
  friend constexpr bool operator>(TimePoint a, TimePoint b) { return b < a; }
  friend constexpr bool operator>=(TimePoint a, TimePoint b) { return b <= a; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint(t.seconds + d);
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint(t.seconds - d);
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return a.seconds - b.seconds;
  }

  std::string ToString() const;
};

inline constexpr Duration kSecond = 1.0;
inline constexpr Duration kMinute = 60.0;
inline constexpr Duration kHour = 3600.0;
inline constexpr Duration kDay = 86400.0;
inline constexpr Duration kWeek = 7.0 * kDay;

}  // namespace piet::temporal

#endif  // PIET_TEMPORAL_TIME_POINT_H_
