#include "temporal/time_dimension.h"

#include <algorithm>
#include <cstdio>

namespace piet::temporal {

namespace {

std::string FormatDay(const CivilTime& c) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

std::string FormatMonth(const CivilTime& c) {
  char buf[12];
  std::snprintf(buf, sizeof(buf), "%04d-%02d", c.year, c.month);
  return buf;
}

std::string FormatMinute(const CivilTime& c) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d", c.year, c.month,
                c.day, c.hour, c.minute);
  return buf;
}

}  // namespace

const std::vector<std::string>& TimeDimension::LevelNames() {
  static const std::vector<std::string>* kLevels = new std::vector<std::string>{
      "timeId", "minute", "hour",      "hourBucket", "timeOfDay", "dayOfWeek",
      "typeOfDay", "day",  "month",    "year",       "all"};
  return *kLevels;
}

bool TimeDimension::HasLevel(std::string_view level) {
  const auto& names = LevelNames();
  return std::find(names.begin(), names.end(), level) != names.end();
}

Result<Value> TimeDimension::Rollup(std::string_view level, TimePoint t) const {
  if (level == "timeId") {
    return Value(t.seconds);
  }
  if (level == "hour") {
    return Value(static_cast<int64_t>(GetHourOfDay(t)));
  }
  if (level == "hourBucket") {
    return Value(static_cast<int64_t>(StartOfHour(t).seconds));
  }
  if (level == "timeOfDay") {
    return Value(std::string(TimeOfDayToString(GetTimeOfDay(t))));
  }
  if (level == "dayOfWeek") {
    return Value(std::string(DayOfWeekToString(GetDayOfWeek(t))));
  }
  if (level == "typeOfDay") {
    return Value(std::string(TypeOfDayToString(GetTypeOfDay(t))));
  }
  CivilTime c = ToCivil(t);
  if (level == "minute") {
    return Value(FormatMinute(c));
  }
  if (level == "day") {
    return Value(FormatDay(c));
  }
  if (level == "month") {
    return Value(FormatMonth(c));
  }
  if (level == "year") {
    return Value(static_cast<int64_t>(c.year));
  }
  if (level == "all") {
    return Value("all");
  }
  return Status::NotFound("unknown Time dimension level: " +
                          std::string(level));
}

bool TimeDimension::RollsUp(std::string_view fine, std::string_view coarse) {
  if (fine == coarse) {
    return true;
  }
  if (coarse == "all") {
    return HasLevel(fine);
  }
  if (fine == "timeId") {
    return HasLevel(coarse);
  }
  // Explicit edges of the hierarchy above timeId.
  struct Edge {
    std::string_view fine;
    std::string_view coarse;
  };
  static constexpr Edge kEdges[] = {
      {"minute", "hour"},       {"minute", "hourBucket"},
      {"hour", "timeOfDay"},    {"hourBucket", "day"},
      {"day", "month"},         {"month", "year"},
      {"day", "dayOfWeek"},     {"dayOfWeek", "typeOfDay"},
  };
  // BFS over the tiny DAG.
  std::vector<std::string_view> frontier = {fine};
  std::vector<std::string_view> seen = {fine};
  while (!frontier.empty()) {
    std::string_view cur = frontier.back();
    frontier.pop_back();
    for (const Edge& e : kEdges) {
      if (e.fine == cur) {
        if (e.coarse == coarse) {
          return true;
        }
        if (std::find(seen.begin(), seen.end(), e.coarse) == seen.end()) {
          seen.push_back(e.coarse);
          frontier.push_back(e.coarse);
        }
      }
    }
  }
  return false;
}

}  // namespace piet::temporal
