#ifndef PIET_TEMPORAL_INTERVAL_H_
#define PIET_TEMPORAL_INTERVAL_H_

#include <string>
#include <vector>

#include "temporal/time_point.h"

namespace piet::temporal {

/// A closed time interval [begin, end], begin <= end. Point intervals
/// (begin == end) are allowed; they arise from grazing region contacts.
struct Interval {
  TimePoint begin;
  TimePoint end;

  Interval() = default;
  Interval(TimePoint b, TimePoint e) : begin(b), end(e) {}

  Duration Length() const { return end - begin; }
  bool IsPoint() const { return begin == end; }

  bool Contains(TimePoint t) const { return begin <= t && t <= end; }
  bool Intersects(const Interval& o) const {
    return begin <= o.end && o.begin <= end;
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.begin == b.begin && a.end == b.end;
  }

  std::string ToString() const;
};

/// A canonical union of disjoint, sorted, non-adjacent closed intervals.
/// This is the value type of "the times object O was inside region C" — the
/// temporal projection of the paper's spatio-temporal structure C for a
/// fixed object.
class IntervalSet {
 public:
  IntervalSet() = default;
  /// Builds from arbitrary intervals: sorts, merges overlaps and touching
  /// endpoints (closed-set union).
  explicit IntervalSet(std::vector<Interval> intervals);

  const std::vector<Interval>& intervals() const { return intervals_; }
  bool empty() const { return intervals_.empty(); }
  size_t size() const { return intervals_.size(); }

  /// Total measure (sum of lengths; point intervals contribute 0).
  Duration TotalLength() const;

  bool Contains(TimePoint t) const;

  /// Set union.
  IntervalSet Union(const IntervalSet& other) const;
  /// Set intersection.
  IntervalSet Intersect(const IntervalSet& other) const;
  /// Intersection with a single interval (restriction).
  IntervalSet Clip(const Interval& window) const;

  /// Adds one interval, re-canonicalizing.
  void Add(const Interval& interval);

  /// Drops zero-length (point) intervals.
  IntervalSet WithoutPoints() const;

  std::string ToString() const;

  friend bool operator==(const IntervalSet& a, const IntervalSet& b) {
    return a.intervals_ == b.intervals_;
  }

 private:
  void Canonicalize();

  std::vector<Interval> intervals_;
};

}  // namespace piet::temporal

#endif  // PIET_TEMPORAL_INTERVAL_H_
