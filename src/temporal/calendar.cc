#include "temporal/calendar.h"

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

namespace piet::temporal {

namespace {

// Epoch 2000-01-01 was a Saturday.
constexpr int kEpochDayOfWeek = 5;  // index of Saturday in our Monday-based enum

// Days from the epoch (2000-01-01) to the first day of `year`.
int64_t DaysToYear(int year) {
  int64_t days = 0;
  if (year >= 2000) {
    for (int y = 2000; y < year; ++y) {
      days += IsLeapYear(y) ? 366 : 365;
    }
  } else {
    for (int y = year; y < 2000; ++y) {
      days -= IsLeapYear(y) ? 366 : 365;
    }
  }
  return days;
}

}  // namespace

std::string_view DayOfWeekToString(DayOfWeek d) {
  switch (d) {
    case DayOfWeek::kMonday:
      return "Monday";
    case DayOfWeek::kTuesday:
      return "Tuesday";
    case DayOfWeek::kWednesday:
      return "Wednesday";
    case DayOfWeek::kThursday:
      return "Thursday";
    case DayOfWeek::kFriday:
      return "Friday";
    case DayOfWeek::kSaturday:
      return "Saturday";
    case DayOfWeek::kSunday:
      return "Sunday";
  }
  return "Unknown";
}

std::string_view TimeOfDayToString(TimeOfDay t) {
  switch (t) {
    case TimeOfDay::kNight:
      return "Night";
    case TimeOfDay::kMorning:
      return "Morning";
    case TimeOfDay::kAfternoon:
      return "Afternoon";
    case TimeOfDay::kEvening:
      return "Evening";
  }
  return "Unknown";
}

std::string_view TypeOfDayToString(TypeOfDay t) {
  switch (t) {
    case TypeOfDay::kWeekday:
      return "Weekday";
    case TypeOfDay::kWeekend:
      return "Weekend";
  }
  return "Unknown";
}

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) {
    return 29;
  }
  return kDays[month - 1];
}

std::string CivilTime::ToString() const {
  char buf[40];
  int whole_second = static_cast<int>(second);
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", year, month,
                day, hour, minute, whole_second);
  return buf;
}

CivilTime ToCivil(TimePoint t) {
  double day_count_d = std::floor(t.seconds / kDay);
  int64_t day_count = static_cast<int64_t>(day_count_d);
  double seconds_in_day = t.seconds - day_count_d * kDay;

  CivilTime out;
  // Find the year.
  int year = 2000;
  int64_t days = day_count;
  while (days < 0) {
    --year;
    days += IsLeapYear(year) ? 366 : 365;
  }
  while (days >= (IsLeapYear(year) ? 366 : 365)) {
    days -= IsLeapYear(year) ? 366 : 365;
    ++year;
  }
  out.year = year;
  // Find the month and day.
  int month = 1;
  while (days >= DaysInMonth(year, month)) {
    days -= DaysInMonth(year, month);
    ++month;
  }
  out.month = month;
  out.day = static_cast<int>(days) + 1;

  out.hour = static_cast<int>(seconds_in_day / kHour);
  double rem = seconds_in_day - out.hour * kHour;
  out.minute = static_cast<int>(rem / kMinute);
  out.second = rem - out.minute * kMinute;
  return out;
}

Result<TimePoint> FromCivil(const CivilTime& civil) {
  if (civil.month < 1 || civil.month > 12) {
    return Status::InvalidArgument("month out of range");
  }
  if (civil.day < 1 || civil.day > DaysInMonth(civil.year, civil.month)) {
    return Status::InvalidArgument("day out of range");
  }
  if (civil.hour < 0 || civil.hour > 23 || civil.minute < 0 ||
      civil.minute > 59 || civil.second < 0.0 || civil.second >= 60.0) {
    return Status::InvalidArgument("time of day out of range");
  }
  int64_t days = DaysToYear(civil.year);
  for (int m = 1; m < civil.month; ++m) {
    days += DaysInMonth(civil.year, m);
  }
  days += civil.day - 1;
  double seconds = static_cast<double>(days) * kDay + civil.hour * kHour +
                   civil.minute * kMinute + civil.second;
  return TimePoint(seconds);
}

Result<TimePoint> ParseTimePoint(std::string_view text) {
  std::string s(Trim(text));
  CivilTime civil;
  int matched = std::sscanf(s.c_str(), "%d-%d-%d %d:%d:%lf", &civil.year,
                            &civil.month, &civil.day, &civil.hour,
                            &civil.minute, &civil.second);
  if (matched < 3) {
    return Status::ParseError("expected 'YYYY-MM-DD[ HH:MM[:SS]]', got '" + s +
                              "'");
  }
  if (matched == 4) {
    return Status::ParseError("minutes missing in '" + s + "'");
  }
  if (matched == 3) {
    civil.hour = civil.minute = 0;
    civil.second = 0.0;
  } else if (matched == 5) {
    civil.second = 0.0;
  }
  return FromCivil(civil);
}

DayOfWeek GetDayOfWeek(TimePoint t) {
  int64_t day_count = static_cast<int64_t>(std::floor(t.seconds / kDay));
  int64_t idx = (day_count + kEpochDayOfWeek) % 7;
  if (idx < 0) {
    idx += 7;
  }
  return static_cast<DayOfWeek>(idx);
}

int GetHourOfDay(TimePoint t) {
  double day_frac = t.seconds - std::floor(t.seconds / kDay) * kDay;
  return static_cast<int>(day_frac / kHour);
}

TimeOfDay GetTimeOfDay(TimePoint t) {
  int hour = GetHourOfDay(t);
  if (hour < 6) {
    return TimeOfDay::kNight;
  }
  if (hour < 12) {
    return TimeOfDay::kMorning;
  }
  if (hour < 18) {
    return TimeOfDay::kAfternoon;
  }
  return TimeOfDay::kEvening;
}

TypeOfDay GetTypeOfDay(TimePoint t) {
  DayOfWeek d = GetDayOfWeek(t);
  return (d == DayOfWeek::kSaturday || d == DayOfWeek::kSunday)
             ? TypeOfDay::kWeekend
             : TypeOfDay::kWeekday;
}

TimePoint StartOfDay(TimePoint t) {
  return TimePoint(std::floor(t.seconds / kDay) * kDay);
}

TimePoint StartOfHour(TimePoint t) {
  return TimePoint(std::floor(t.seconds / kHour) * kHour);
}

std::string TimePoint::ToString() const { return ToCivil(*this).ToString(); }

}  // namespace piet::temporal
