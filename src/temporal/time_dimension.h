#ifndef PIET_TEMPORAL_TIME_DIMENSION_H_
#define PIET_TEMPORAL_TIME_DIMENSION_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "temporal/calendar.h"
#include "temporal/time_point.h"

namespace piet::temporal {

/// The paper's Time dimension: the bottom level `timeId` is an instant, and
/// every coarser category is reached through a rollup function
/// `R^level_timeId`. Unlike application dimensions (whose rollups are stored
/// relations), the Time dimension's rollups are *computed* — exactly the
/// `R^{timeOfDay}_{timeId}(t) = "Morning"` usage in the paper's queries.
///
/// Levels and their member domains:
///   "timeId"    -> double seconds              (identity)
///   "minute"    -> "YYYY-MM-DD HH:MM"
///   "hour"      -> hour of day, int 0..23      (paper's R^hour usage)
///   "hourBucket"-> start-of-hour instant, int64 seconds (grouping across days)
///   "timeOfDay" -> "Night"/"Morning"/"Afternoon"/"Evening"
///   "dayOfWeek" -> "Monday".."Sunday"
///   "typeOfDay" -> "Weekday"/"Weekend"
///   "day"       -> "YYYY-MM-DD"
///   "month"     -> "YYYY-MM"
///   "year"      -> int
///   "all"       -> "all"
class TimeDimension {
 public:
  TimeDimension() = default;

  /// All supported level names, finest first.
  static const std::vector<std::string>& LevelNames();

  /// True if `level` is a supported level name.
  static bool HasLevel(std::string_view level);

  /// Applies the rollup function R^level_timeId to instant `t`.
  Result<Value> Rollup(std::string_view level, TimePoint t) const;

  /// True if level `coarse` is reachable from level `fine` in the hierarchy
  /// (e.g. Rollsup("hour", "timeOfDay") is true; the paper writes
  /// `timeOfDay -> hour` for hour→timeOfDay granularity ordering).
  static bool RollsUp(std::string_view fine, std::string_view coarse);
};

}  // namespace piet::temporal

#endif  // PIET_TEMPORAL_TIME_DIMENSION_H_
